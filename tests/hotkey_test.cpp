// Tests for the skew-aware hot-key replication plane (DESIGN.md §12): the
// space-saving tracker, promotion + one-sided replica reads, pre-ack write
// invalidation, epoch-bump demotion, the client pointer-cache epoch sweep,
// and the hotkey chaos families.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/hotkey_chaos.hpp"
#include "common/hash.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"
#include "server/hotkey.hpp"

namespace hydra {
namespace {

// ------------------------------------------------------- tracker unit tests

TEST(HotKeyTracker, TopOrdersByCountWithDeterministicTies) {
  server::HotKeyTracker t(8);
  for (int i = 0; i < 5; ++i) t.record("a");
  for (int i = 0; i < 3; ++i) t.record("b");
  for (int i = 0; i < 3; ++i) t.record("c");
  t.record("d");

  const auto top = t.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[1].key, "b");  // count ties break by key, ascending
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(t.total(), 12u);
}

TEST(HotKeyTracker, MinHitsFiltersColdTail) {
  server::HotKeyTracker t(8);
  for (int i = 0; i < 10; ++i) t.record("hot");
  t.record("cold");
  const auto top = t.top(4, /*min_hits=*/5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "hot");
}

TEST(HotKeyTracker, FullSketchEvictsMinAndInheritsCount) {
  server::HotKeyTracker t(2);
  for (int i = 0; i < 4; ++i) t.record("a");
  t.record("b");
  // Sketch full: the newcomer displaces the minimum ("b", count 1) and
  // inherits min+1 -- the space-saving overestimate bound.
  t.record("c");
  const auto top = t.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[1].key, "c");
  EXPECT_EQ(top[1].count, 2u);
  EXPECT_EQ(t.size(), 2u);

  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_TRUE(t.top(2).empty());
}

// --------------------------------------------------- plane integration tests

db::ClusterOptions hot_opts() {
  db::ClusterOptions o;
  o.server_nodes = 3;
  o.shards_per_node = 1;
  o.client_nodes = 1;
  o.clients_per_node = 2;
  o.replicas = 2;
  o.enable_swat = true;
  o.client_rdma_read = true;
  o.shard_template.grant_remote_pointers = true;
  o.shard_template.store.arena_bytes = 8 << 20;
  // Short leases force frequent renewals, the message traffic that carries
  // promotion sets to clients already holding cached pointers.
  o.shard_template.store.min_lease = 20 * kMillisecond;
  o.shard_template.store.max_lease = 50 * kMillisecond;
  o.shard_template.hotkey_top_k = 4;
  o.shard_template.hotkey_tracker_capacity = 32;
  o.shard_template.hotkey_promote_min_hits = 4;
  o.shard_template.hotkey_scan_interval = 250 * kMicrosecond;
  return o;
}

std::uint64_t total_replica_hits(db::HydraCluster& cluster) {
  std::uint64_t hits = 0;
  for (const auto* c : cluster.clients()) hits += c->stats().replica_hits;
  return hits;
}

TEST(HotKeyPlane, SkewedGetsPromoteAndReplicaReadsServe) {
  obs::Plane plane;
  auto opts = hot_opts();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("hot", "pizza"), Status::kOk);
  const ShardId owner = cluster.owner_of("hot");

  for (int i = 0; i < 300; ++i) {
    auto got = cluster.get("hot", i % 2);
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, "pizza");
  }

  EXPECT_GE(cluster.shard(owner)->stats().hotkey_promotions, 1u);
  EXPECT_GT(cluster.shard(owner)->stats().hotkey_advertised, 0u);
  EXPECT_GT(total_replica_hits(cluster), 0u)
      << "round-robin fan-out never reached a follower copy";
  EXPECT_GE(plane.query().count(obs::TraceKind::kHotKeyPromoted), 1u);
  EXPECT_GE(plane.query().count(obs::TraceKind::kReplicaReadHit), 1u);
}

TEST(HotKeyPlane, PromotionOffKeepsPlaneSilent) {
  auto opts = hot_opts();
  opts.shard_template.hotkey_top_k = 0;  // the default: plane fully disabled
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("hot", "pizza"), Status::kOk);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(cluster.get("hot").has_value());
  const ShardId owner = cluster.owner_of("hot");
  EXPECT_EQ(cluster.shard(owner)->stats().hotkey_promotions, 0u);
  EXPECT_EQ(cluster.shard(owner)->stats().hotkey_advertised, 0u);
  EXPECT_EQ(total_replica_hits(cluster), 0u);
}

TEST(HotKeyPlane, WriteInvalidatesCopiesBeforeAck) {
  auto opts = hot_opts();
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("hot", "v0"), Status::kOk);
  const ShardId owner = cluster.owner_of("hot");

  // Heat the key until copies serve reads.
  int spins = 0;
  while (total_replica_hits(cluster) == 0 && spins++ < 600) {
    ASSERT_TRUE(cluster.get("hot", spins % 2).has_value());
  }
  ASSERT_GT(total_replica_hits(cluster), 0u) << "plane never engaged";

  // Overwrite, then read immediately and repeatedly: every post-ack GET must
  // see the new value no matter which copy the round-robin picks. A stale
  // follower copy surviving the ack would surface "v0" here.
  for (int round = 1; round <= 5; ++round) {
    const std::string want = "v" + std::to_string(round);
    ASSERT_EQ(cluster.put("hot", want), Status::kOk);
    for (int i = 0; i < 40; ++i) {
      auto got = cluster.get("hot", i % 2);
      ASSERT_TRUE(got.has_value()) << round << ":" << i;
      EXPECT_EQ(*got, want) << "stale replica read after write ack";
    }
  }
  EXPECT_GT(cluster.shard(owner)->stats().hotkey_invalidations, 0u)
      << "writes never found a live promotion to invalidate";
}

TEST(HotKeyPlane, FailoverEpochBumpDemotesAndNeverServesStale) {
  obs::Plane plane;
  auto opts = hot_opts();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("hot", "before"), Status::kOk);
  const ShardId owner = cluster.owner_of("hot");

  int spins = 0;
  while (total_replica_hits(cluster) == 0 && spins++ < 600) {
    ASSERT_TRUE(cluster.get("hot", spins % 2).has_value());
  }
  ASSERT_GT(total_replica_hits(cluster), 0u) << "plane never engaged";
  const std::uint64_t epoch_before = cluster.routing_epoch();

  // Kill the primary: SWAT promotes a follower -- possibly one that holds a
  // promoted copy -- and publishes a new epoch. Every cached pointer (and
  // its replica set) must be dropped at the bump; reads after the failover
  // go through the new primary and must see the acked value.
  cluster.crash_primary(owner);
  cluster.run_for(4 * kSecond);
  ASSERT_GT(cluster.routing_epoch(), epoch_before);

  for (int i = 0; i < 60; ++i) {
    auto got = cluster.get("hot", i % 2);
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, "before") << "stale or lost value after failover";
  }
  // The new value plane starts from scratch on the successor; writes work.
  ASSERT_EQ(cluster.put("hot", "after"), Status::kOk);
  EXPECT_EQ(*cluster.get("hot"), "after");
  std::uint64_t epoch_invalidations = 0;
  for (const auto* c : cluster.clients()) {
    epoch_invalidations += c->stats().epoch_invalidations;
  }
  EXPECT_GT(epoch_invalidations, 0u);
}

// ----------------------------------- pointer-cache epoch sweep (regression)

// The stale-epoch bug this pins: entries leased under a superseded epoch
// used to linger in the client pointer cache forever unless their exact key
// was re-read -- skipped on lookup but never erased, so the entry count
// ratcheted up across epoch bumps until collision pressure evicted live
// entries. The fix sweeps the whole cache at the first stale hit of each
// new epoch; this test pins the entry count across N bumps.
TEST(PtrCacheSweep, EpochBumpsDoNotAccumulateStaleEntries) {
  auto opts = hot_opts();
  opts.clients_per_node = 1;
  opts.shard_template.hotkey_top_k = 0;  // plane off; this is a cache test
  db::HydraCluster cluster(opts);
  auto* client = cluster.clients()[0];

  constexpr int kKeys = 24;
  auto key_of = [](int i) { return "sweep-" + std::to_string(i); };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(cluster.put(key_of(i), "v"), Status::kOk);
    ASSERT_TRUE(cluster.get(key_of(i)).has_value());
  }
  ASSERT_EQ(client->pointer_cache().size(), static_cast<std::size_t>(kKeys));

  for (int round = 0; round < 3; ++round) {
    // Any promotion bumps the global routing epoch, staling every cached
    // pointer -- including those of untouched shards.
    const std::uint64_t before = cluster.routing_epoch();
    cluster.crash_primary(static_cast<ShardId>(round % cluster.shard_count()));
    cluster.run_for(4 * kSecond);
    ASSERT_GT(cluster.routing_epoch(), before) << "round " << round;

    // One GET hits its stale entry, which triggers the full-cache sweep:
    // after it, only entries stamped with the live epoch may remain.
    ASSERT_TRUE(cluster.get(key_of(0)).has_value()) << "round " << round;
    EXPECT_LE(client->pointer_cache().size(), 2u)
        << "stale-epoch entries survived the sweep in round " << round;
    EXPECT_GT(client->stats().stale_evicted, 0u);

    // Re-heat the cache for the next round.
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(cluster.get(key_of(i)).has_value()) << round << ":" << i;
    }
    EXPECT_EQ(client->pointer_cache().size(), static_cast<std::size_t>(kKeys))
        << "entry count must return to exactly the working set, round " << round;
  }
}

// ------------------------------------------------------- chaos: scripted

TEST(HotKeyChaos, ScriptedFamiliesHoldInvariants) {
  for (const auto& schedule : chaos::HotKeySchedule::scripted()) {
    const auto report = chaos::HotKeyChaosRunner::run(schedule, 42);
    EXPECT_TRUE(report.passed()) << schedule.name << ":\n"
                                 << report.history.substr(0, 4000);
    for (const auto& v : report.violations) {
      ADD_FAILURE() << schedule.name << ": " << v;
    }
    EXPECT_EQ(report.stale_reads, 0u) << schedule.name;
    EXPECT_EQ(report.wedged, 0u) << schedule.name;
  }
}

TEST(HotKeyChaos, BaselineActuallyExercisesThePlane) {
  const auto scripted = chaos::HotKeySchedule::scripted();
  ASSERT_FALSE(scripted.empty());
  const auto report = chaos::HotKeyChaosRunner::run(scripted.front(), 7);
  ASSERT_TRUE(report.passed()) << report.history.substr(0, 4000);
  // A baseline that never promotes or never serves a replica read would
  // make every other family vacuous.
  EXPECT_GT(report.promotions, 0u);
  EXPECT_GT(report.replica_hits, 0u);
}

TEST(HotKeyChaos, WriteRaceFamilyInvalidatesCopies) {
  for (const auto& schedule : chaos::HotKeySchedule::scripted()) {
    if (schedule.name != "hotkey-write-invalidate-race") continue;
    const auto report = chaos::HotKeyChaosRunner::run(schedule, 11);
    ASSERT_TRUE(report.passed()) << report.history.substr(0, 4000);
    EXPECT_GT(report.invalidations, 0u)
        << "writes never raced a live promotion; the family tests nothing";
    return;
  }
  FAIL() << "scripted() lost the hotkey-write-invalidate-race family";
}

TEST(HotKeyChaos, HistoryIsDeterministicAndPlaneBlind) {
  const auto scripted = chaos::HotKeySchedule::scripted();
  // The kill-primary family stresses the most scheduling-sensitive paths.
  const auto& schedule = scripted[3];
  const auto a = chaos::HotKeyChaosRunner::run(schedule, 99);
  const auto b = chaos::HotKeyChaosRunner::run(schedule, 99);
  EXPECT_EQ(a.history, b.history) << "same (schedule, seed) must replay identically";
  obs::Plane plane;
  const auto c = chaos::HotKeyChaosRunner::run(schedule, 99, &plane);
  EXPECT_EQ(a.history, c.history) << "attaching the obs plane perturbed the run";
}

// ------------------------------------------------------- chaos: randomized

TEST(HotKeyChaos, SeededRandomSweepHoldsInvariants) {
  int runs = 6;
  if (const char* env = std::getenv("HYDRA_HOTKEY_RANDOM_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }
  for (int i = 0; i < runs; ++i) {
    const auto seed = static_cast<std::uint64_t>(1000 + i);
    const auto schedule = chaos::HotKeySchedule::random(seed);
    const auto report = chaos::HotKeyChaosRunner::run(schedule, seed);
    EXPECT_TRUE(report.passed()) << schedule.name << ":\n"
                                 << report.history.substr(0, 4000);
    EXPECT_EQ(report.stale_reads, 0u) << schedule.name;
    EXPECT_EQ(report.wedged, 0u) << schedule.name;
  }
}

}  // namespace
}  // namespace hydra
