// Tests for the Figure 9 baseline stores: functional correctness and the
// architectural performance orderings the comparison depends on.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "common/keygen.hpp"
#include "ycsb/baseline_runner.hpp"

namespace hydra::baselines {
namespace {

struct Rig {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  BaselineConfig cfg;

  Rig() {
    cfg.server_node = fabric.add_node("server").id();
    for (int i = 0; i < 2; ++i) {
      cfg.client_nodes.push_back(fabric.add_node("client").id());
    }
  }

  void check_functional(BaselineStore& store) {
    store.load("k1", "v1");

    Status get_status = Status::kTimeout;
    std::string value;
    store.get(0, "k1", [&](Status s, std::string_view v) {
      get_status = s;
      value.assign(v);
    });
    sched.run();
    EXPECT_EQ(get_status, Status::kOk);
    EXPECT_EQ(value, "v1");

    Status put_status = Status::kTimeout;
    store.update(0, "k1", "v2", [&](Status s) { put_status = s; });
    sched.run();
    EXPECT_EQ(put_status, Status::kOk);

    store.get(0, "k1", [&](Status, std::string_view v) { value.assign(v); });
    sched.run();
    EXPECT_EQ(value, "v2");

    Status missing = Status::kOk;
    store.get(1, "nope", [&](Status s, std::string_view) { missing = s; });
    sched.run();
    EXPECT_EQ(missing, Status::kNotFound);
  }
};

TEST(Baselines, MemcachedLikeFunctional) {
  Rig rig;
  auto store = make_memcached_like(rig.sched, rig.fabric, rig.cfg);
  EXPECT_STREQ(store->name(), "memcached-like");
  rig.check_functional(*store);
}

TEST(Baselines, RedisLikeFunctional) {
  Rig rig;
  auto store = make_redis_like(rig.sched, rig.fabric, rig.cfg);
  EXPECT_STREQ(store->name(), "redis-like");
  rig.check_functional(*store);
}

TEST(Baselines, RamcloudLikeFunctional) {
  Rig rig;
  auto store = make_ramcloud_like(rig.sched, rig.fabric, rig.cfg);
  EXPECT_STREQ(store->name(), "ramcloud-like");
  rig.check_functional(*store);
}

TEST(Baselines, ManyKeysSurviveChurn) {
  Rig rig;
  auto store = make_redis_like(rig.sched, rig.fabric, rig.cfg);
  for (int i = 0; i < 200; ++i) {
    store->load(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i)));
  }
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    store->get(i % 4, format_key(static_cast<std::uint64_t>(i)),
               [&, i](Status s, std::string_view v) {
                 if (s == Status::kOk && v == synth_value(static_cast<std::uint64_t>(i))) ++correct;
               });
    rig.sched.run();
  }
  EXPECT_EQ(correct, 200);
}

ycsb::WorkloadSpec tiny_spec() {
  ycsb::WorkloadSpec spec;
  spec.get_fraction = 0.9;
  spec.distribution = Distribution::kUniform;
  spec.record_count = 500;
  spec.operations = 4000;
  return spec;
}

TEST(Baselines, RunnerCompletesAllOperations) {
  Rig rig;
  auto store = make_memcached_like(rig.sched, rig.fabric, rig.cfg);
  const auto result = ycsb::run_baseline(rig.sched, *store, tiny_spec(), 8);
  EXPECT_EQ(result.operations, 4000u);
  EXPECT_GT(result.throughput_mops, 0.0);
  EXPECT_GT(result.avg_get_us, 0.0);
}

TEST(Baselines, VerbsBeatsKernelTcpOnLatency) {
  // RAMCloud (native IB) must show far lower latency than the TCP systems:
  // this ordering is the backbone of Figure 9.
  Rig tcp_rig;
  auto memcached = make_memcached_like(tcp_rig.sched, tcp_rig.fabric, tcp_rig.cfg);
  const auto tcp = ycsb::run_baseline(tcp_rig.sched, *memcached, tiny_spec(), 8);

  Rig ib_rig;
  auto ramcloud = make_ramcloud_like(ib_rig.sched, ib_rig.fabric, ib_rig.cfg);
  const auto verbs = ycsb::run_baseline(ib_rig.sched, *ramcloud, tiny_spec(), 8);

  EXPECT_LT(verbs.avg_get_us, tcp.avg_get_us / 3.0)
      << "verbs transport should cut latency by the stack round trips";
  EXPECT_GT(verbs.throughput_mops, tcp.throughput_mops);
}

TEST(Baselines, LockContentionHurtsMemcachedUnderManyClients) {
  // Enough offered load to hit the global lock's capacity: 4 vs 64 clients
  // with transaction-weight critical sections must scale far below 16x.
  auto spec = tiny_spec();
  spec.operations = 16000;
  Rig small_rig;
  small_rig.cfg.store_op_cost = 2000;
  small_rig.cfg.lock_hold_extra = 2000;
  auto a = make_memcached_like(small_rig.sched, small_rig.fabric, small_rig.cfg);
  const auto with4 = ycsb::run_baseline(small_rig.sched, *a, spec, 4);

  Rig big_rig;
  big_rig.cfg.store_op_cost = 2000;
  big_rig.cfg.lock_hold_extra = 2000;
  auto b = make_memcached_like(big_rig.sched, big_rig.fabric, big_rig.cfg);
  const auto with64 = ycsb::run_baseline(big_rig.sched, *b, spec, 64);

  const double scaling = with64.throughput_mops / with4.throughput_mops;
  EXPECT_LT(scaling, 10.0) << "global lock should prevent linear scaling";
  EXPECT_GT(scaling, 1.0);
}

TEST(Baselines, RedisShardingHelpsUniformLoadUnderSaturation) {
  // 64 closed-loop clients saturate a single event loop (~0.28 Mops) while
  // 8 instances absorb the same demand.
  auto spec = tiny_spec();
  spec.operations = 16000;
  Rig one_rig;
  auto one_cfg = one_rig.cfg;
  one_cfg.parallelism = 1;
  auto single = make_redis_like(one_rig.sched, one_rig.fabric, one_cfg);
  const auto r1 = ycsb::run_baseline(one_rig.sched, *single, spec, 64);

  Rig eight_rig;
  auto eight = make_redis_like(eight_rig.sched, eight_rig.fabric, eight_rig.cfg);  // 8 instances
  const auto r8 = ycsb::run_baseline(eight_rig.sched, *eight, spec, 64);

  EXPECT_GT(r8.throughput_mops, r1.throughput_mops * 1.5)
      << "client-side sharding should spread uniform load over instances";
}

}  // namespace
}  // namespace hydra::baselines
