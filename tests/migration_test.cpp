// Live shard migration (DESIGN.md §9): the chaos sweep over the elastic
// membership plane, golden-determinism checks with the observability plane
// attached, and one regression per stale-ownership bug the protocol closes.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "common/hash.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"
#include "obs/trace.hpp"

namespace hydra {
namespace {

using chaos::MigrationChaosRunner;
using chaos::MigrationReport;
using chaos::MigrationSchedule;

std::string describe(const MigrationReport& r) {
  std::string out;
  for (const auto& v : r.violations) out += "  " + v + "\n";
  out += "--- history ---\n" + r.history;
  return out;
}

const MigrationSchedule& scripted_by_name(const std::string& name) {
  static const auto all = MigrationSchedule::scripted();
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no scripted migration schedule named " << name;
  return all.front();
}

db::ClusterOptions elastic_options(int shards) {
  db::ClusterOptions opts;
  opts.server_nodes = shards;
  opts.shards_per_node = 1;
  opts.total_shards = shards;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = 1;
  opts.enable_swat = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  return opts;
}

void run_until_committed(db::HydraCluster& cluster) {
  for (int i = 0; i < 200 && cluster.migration_active(); ++i) {
    cluster.run_for(100 * kMillisecond);
  }
  ASSERT_FALSE(cluster.migration_active()) << "migration never committed";
}

// ---------------------------------------------------------------- the sweep

// Every scripted family (clean add/drain, source, destination, victim and
// SWAT kills mid-copy) across several seeds: every acked PUT stays readable
// with its exact value, no key is lost or double-owned after the final
// epoch, and the migration commits despite the faults.
TEST(MigrationSweep, ScriptedFamilies) {
  for (const auto& schedule : MigrationSchedule::scripted()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const MigrationReport r = MigrationChaosRunner::run(schedule, seed);
      EXPECT_TRUE(r.passed()) << schedule.name << " seed " << seed << ":\n"
                              << describe(r);
      EXPECT_GT(r.acked_puts, 0u) << schedule.name << " seed " << seed;
      EXPECT_TRUE(r.migration_completed) << schedule.name << " seed " << seed;
      EXPECT_GT(r.keys_moved, 0u) << schedule.name << " seed " << seed;
    }
  }
}

// Seeded-random compositions over the same alphabet (add/drain x clean /
// source-kill / destination-kill / SWAT-gap). HYDRA_MIGRATION_RANDOM_RUNS
// scales the sweep (tier1.sh shortens the sanitizer passes).
TEST(MigrationSweep, RandomFamilies) {
  int runs = 20;
  if (const char* env = std::getenv("HYDRA_MIGRATION_RANDOM_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }
  for (int i = 1; i <= runs; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const MigrationSchedule schedule = MigrationSchedule::random(seed);
    const MigrationReport r = MigrationChaosRunner::run(schedule, seed);
    EXPECT_TRUE(r.passed()) << schedule.name << ":\n" << describe(r);
  }
}

// The dual-ownership window is real: writes applied by a source while its
// snapshot copies must be forwarded down the flow (the workload overlaps
// the copy, so a clean add always forwards some records).
TEST(MigrationSweep, DualOwnershipCatchUpForwards) {
  const MigrationReport r = MigrationChaosRunner::run(scripted_by_name("add-clean"), 1);
  ASSERT_TRUE(r.passed()) << describe(r);
  EXPECT_GT(r.forwarded, 0u)
      << "no dual-ownership records forwarded; the catch-up path is dead:\n"
      << r.history;
}

// ------------------------------------------------------------- determinism

// Identical (schedule, seed) must reproduce the run byte-for-byte.
TEST(MigrationDeterminism, SameSeedSameHistory) {
  const auto& scripted = scripted_by_name("add-kill-source");
  const MigrationReport a = MigrationChaosRunner::run(scripted, 7);
  const MigrationReport b = MigrationChaosRunner::run(scripted, 7);
  EXPECT_EQ(a.history, b.history);

  const MigrationSchedule random = MigrationSchedule::random(42);
  const MigrationReport c = MigrationChaosRunner::run(random, 42);
  const MigrationReport d = MigrationChaosRunner::run(random, 42);
  EXPECT_EQ(c.history, d.history);
  EXPECT_NE(a.history, c.history);  // different schedules diverge
}

// Attaching the observability plane must not perturb the simulation: the
// history (virtual times included) is byte-identical with obs on and off,
// for a clean run and for one with kills mid-migration.
TEST(MigrationDeterminism, ObsPlaneDoesNotPerturbHistory) {
  for (const char* name : {"add-clean", "drain-kill-victim"}) {
    const auto& schedule = scripted_by_name(name);
    const MigrationReport bare = MigrationChaosRunner::run(schedule, 5);
    obs::Plane plane;
    const MigrationReport observed = MigrationChaosRunner::run(schedule, 5, &plane);
    EXPECT_EQ(bare.history, observed.history) << name;
    // And the plane actually saw the protocol.
    const auto q = plane.query();
    EXPECT_GE(q.count(obs::TraceKind::kMigrationStart), 1u) << name;
    EXPECT_GE(q.count(obs::TraceKind::kMigrationDone), 1u) << name;
  }
}

// ------------------------------------------------- one regression per bug

// THE headline bug: a client holds a cached remote pointer (with a
// multi-second lease) into a shard that is then drained out of the ring.
// The drained shard's arena stays allocated (graveyard), so without epoch
// fencing the one-sided read would still be posted against the retired
// rkey -- and could return the stale value for as long as the lease held.
// The fix: the routing epoch stamped into the pointer at cache time must be
// re-checked against the live epoch before every one-sided read.
TEST(MigrationRegression, NoRdmaReadAgainstDrainedShardsRkey) {
  obs::Plane plane;
  auto opts = elastic_options(3);
  opts.obs = &plane;
  db::HydraCluster cluster(opts);

  const ShardId victim = 1;
  std::string key;
  for (int i = 0; i < 256; ++i) {
    key = "hot-" + std::to_string(i);
    if (cluster.owner_of(key) == victim) break;
  }
  ASSERT_EQ(cluster.owner_of(key), victim);
  ASSERT_EQ(cluster.put(key, "v1"), Status::kOk);

  // Pump the key's popularity so the next lease spans the whole drain.
  auto* sh = cluster.shard(victim);
  ASSERT_NE(sh, nullptr);
  for (int i = 0; i < 6; ++i) {
    (void)sh->store().get(key, cluster.scheduler().now(), /*grant_lease=*/true);
  }
  ASSERT_TRUE(cluster.get(key).has_value());  // mints + caches the pointer
  cluster.run_for(10 * kMillisecond);

  // Sanity: the pointer is hot -- this GET must be a one-sided read hit.
  auto* cl = cluster.clients().front();
  const std::uint64_t hits_before = cl->stats().ptr_hits;
  ASSERT_EQ(*cluster.get(key), "v1");
  ASSERT_GT(cl->stats().ptr_hits, hits_before) << "RDMA-read path never engaged";

  const std::uint32_t victim_rkey = sh->arena_rkey();
  ASSERT_TRUE(cluster.drain_shard_live(victim));
  run_until_committed(cluster);
  cluster.run_for(kSecond);

  const auto commit = plane.query().last(obs::TraceKind::kEpochPublished);
  ASSERT_TRUE(commit.has_value());

  // The moved key must read back correctly -- and via the NEW owner: not a
  // single RDMA Read may be posted against the drained shard's rkey after
  // the epoch was published.
  const std::uint64_t invalidations_before = cl->stats().epoch_invalidations;
  EXPECT_EQ(*cluster.get(key), "v1");
  EXPECT_EQ(*cluster.get(key), "v1");
  EXPECT_GT(cl->stats().epoch_invalidations, invalidations_before)
      << "stale pointer was never invalidated by the epoch check";

  const auto q = plane.query();
  std::size_t stale_reads = 0;
  std::size_t pre_commit_reads = 0;
  for (const auto& rec : q.of(obs::TraceKind::kReadPosted)) {
    if (rec.b != victim_rkey) continue;
    if (rec.seq > commit->seq) {
      ++stale_reads;
    } else {
      ++pre_commit_reads;
    }
  }
  EXPECT_GT(pre_commit_reads, 0u) << "test vacuous: key was never RDMA-read";
  EXPECT_EQ(stale_reads, 0u)
      << stale_reads << " one-sided reads posted against the drained rkey";
}

// A write landing on the NEW owner after the commit must be visible to a
// client that cached a pointer under the old ownership (the cached pointer
// references the pre-migration copy of the value).
TEST(MigrationRegression, PostMigrationUpdatesVisibleThroughStaleCache) {
  db::HydraCluster cluster(elastic_options(2));

  // Find a key that the future shard 2 will own.
  cluster::ConsistentHashRing future = cluster.ring();
  future.add_shard(2);
  std::string key;
  for (int i = 0; i < 1024; ++i) {
    key = "move-" + std::to_string(i);
    if (future.owner(hash_key(key)) == 2 && cluster.owner_of(key) != 2) break;
  }
  ASSERT_EQ(future.owner(hash_key(key)), 2u);

  ASSERT_EQ(cluster.put(key, "old"), Status::kOk);
  auto* sh = cluster.shard(cluster.owner_of(key));
  for (int i = 0; i < 6; ++i) {
    (void)sh->store().get(key, cluster.scheduler().now(), /*grant_lease=*/true);
  }
  ASSERT_EQ(*cluster.get(key), "old");  // caches a pointer into the old owner
  cluster.run_for(10 * kMillisecond);

  ASSERT_NE(cluster.add_shard_live(), kInvalidShard);
  run_until_committed(cluster);
  cluster.run_for(kSecond);
  ASSERT_EQ(cluster.owner_of(key), 2u);

  // Update through the new owner, then read through the client that still
  // holds the stale pointer: it must see "new", never the cached "old".
  ASSERT_EQ(cluster.put(key, "new"), Status::kOk);
  EXPECT_EQ(*cluster.get(key), "new");
}

// Keys whose owner does not change must keep their owner across an add --
// the consistent-hash contract that makes migration cost ~1/N.
TEST(MigrationRegression, UnaffectedKeysKeepOwners) {
  db::HydraCluster cluster(elastic_options(3));
  std::vector<std::string> keys;
  std::vector<ShardId> owners_before;
  for (int i = 0; i < 400; ++i) {
    keys.push_back("sample-" + std::to_string(i));
    owners_before.push_back(cluster.owner_of(keys.back()));
  }

  const ShardId subject = cluster.add_shard_live();
  ASSERT_NE(subject, kInvalidShard);
  run_until_committed(cluster);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const ShardId owner = cluster.owner_of(keys[i]);
    if (owner == subject) {
      ++moved;
    } else {
      EXPECT_EQ(owner, owners_before[i])
          << keys[i] << " changed owner without moving to the new shard";
    }
  }
  EXPECT_GT(moved, 0u) << "the new shard owns nothing";
}

// While the migration is sealed, the pre-migration owner answers
// kWrongOwner for moved keys; clients must re-resolve (not fail) and the
// redirect counter must show it happened. A second migration must also be
// rejected while one is active.
TEST(MigrationRegression, SingleMigrationAtATime) {
  db::HydraCluster cluster(elastic_options(2));
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(cluster.put("k-" + std::to_string(i), "v"), Status::kOk);
  }
  ASSERT_NE(cluster.add_shard_live(), kInvalidShard);
  ASSERT_TRUE(cluster.migration_active());
  EXPECT_EQ(cluster.add_shard_live(), kInvalidShard);
  EXPECT_FALSE(cluster.drain_shard_live(0));
  run_until_committed(cluster);
  // And after the commit both are accepted again (one at a time, serially).
  EXPECT_TRUE(cluster.drain_shard_live(2));
  run_until_committed(cluster);
  EXPECT_TRUE(cluster.shard_retired(2));
}

}  // namespace
}  // namespace hydra
