// High-availability tests: SWAT-driven failover, promotion of secondaries,
// client rerouting, data survival, SWAT leader replacement.
#include <string>

#include <gtest/gtest.h>

#include "common/keygen.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "hydradb/swat.hpp"

namespace hydra {
namespace {

db::ClusterOptions ha_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.replicas = 1;
  opts.enable_swat = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  // Failover tests wait for session expiry; keep the client patient enough
  // to ride through it but quick enough to retry often.
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  return opts;
}

TEST(Failover, SwatPromotesSecondaryAfterPrimaryCrash) {
  db::HydraCluster cluster(ha_options());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), Status::kOk);
  }
  cluster.run_for(10 * kMillisecond);  // drain replication

  const ShardId victim = 0;
  const auto secondaries_before = cluster.secondaries_of(victim).size();
  ASSERT_EQ(secondaries_before, 1u);

  cluster.crash_primary(victim);
  // Session timeout (2s) + sweep + watch + promotion.
  cluster.run_for(5 * kSecond);

  EXPECT_EQ(cluster.failovers(), 1u);
  ASSERT_NE(cluster.shard(victim), nullptr);
  EXPECT_TRUE(cluster.shard(victim)->alive());
  // Promotion consumes one replica but must respawn a replacement, or every
  // failover would permanently shrink the replication factor.
  ASSERT_EQ(cluster.secondaries_of(victim).size(), 1u);
  EXPECT_TRUE(cluster.secondaries_of(victim)[0]->alive());
  // And it publishes a monotonic routing epoch.
  EXPECT_EQ(cluster.routing_epoch(), 1u);
  EXPECT_EQ(cluster.coordinator().data("/routing/version"), "1");
}

TEST(Failover, DataSurvivesPrimaryCrash) {
  db::HydraCluster cluster(ha_options());
  // Write everything through the network so replication is exercised.
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), Status::kOk);
  }
  cluster.run_for(50 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // Every key must still be readable -- those owned by shard 0 now come
  // from the promoted replica; clients re-route via timeout + reconnect.
  for (int i = 0; i < 60; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    auto v = cluster.get(key);
    ASSERT_TRUE(v.has_value()) << "lost key " << key << " after failover";
    EXPECT_EQ(*v, synth_value(static_cast<std::uint64_t>(i)));
  }
}

TEST(Failover, WritesResumeAfterFailover) {
  db::HydraCluster cluster(ha_options());
  ASSERT_EQ(cluster.put("before-crash", "v1"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);

  EXPECT_EQ(cluster.put("after-crash", "v2"), Status::kOk);
  EXPECT_EQ(*cluster.get("after-crash"), "v2");
  EXPECT_EQ(*cluster.get("before-crash"), "v1");
}

TEST(Failover, StaleRemotePointersFailSafelyAfterCrash) {
  db::HydraCluster cluster(ha_options());
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  ASSERT_TRUE(cluster.get("k").has_value());  // mints + caches pointer
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(cluster.owner_of("k"));
  cluster.run_for(5 * kSecond);

  // The cached pointer references the dead primary's (revoked) arena; the
  // client must detect the failure and still produce the right answer.
  auto v = cluster.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
}

TEST(Failover, RepeatedFailoversKeepFactorAndData) {
  db::HydraCluster cluster(ha_options());  // 1 replica
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // Crash the promoted primary too: the replacement replica spawned by the
  // first promotion (bootstrap-copied from the survivor) takes over.
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 2u);
  ASSERT_EQ(cluster.secondaries_of(0).size(), 1u);
  // The routing epoch stays strictly monotonic across promotions.
  EXPECT_EQ(cluster.routing_epoch(), 2u);
  EXPECT_EQ(cluster.coordinator().data("/routing/version"), "2");
  if (cluster.owner_of("k") == 0) {
    auto v = cluster.get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "v");
  }
}

TEST(Failover, FailoverWithAllReplicasDeadLosesAvailabilityGracefully) {
  db::HydraCluster cluster(ha_options());  // 1 replica
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // The replica dies first, then the primary: nothing is promotable.
  cluster.crash_secondary(0, 0);
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 0u);
  // The shard is gone; operations on its keys fail instead of hanging.
  if (cluster.owner_of("k") == 0) {
    Status status = Status::kOk;
    EXPECT_FALSE(cluster.get("k", 0, &status).has_value());
    EXPECT_NE(status, Status::kOk);
  }
}

TEST(Failover, SwatLeaderDeathHandsOverReactions) {
  auto opts = ha_options();
  opts.swat_members = 2;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // Kill the SWAT leader first; the next member must take over failovers.
  // (Member sessions expire after the coordinator session timeout.)
  cluster.run_for(kSecond);
  auto* swat = &cluster;  // SWAT is internal; exercise via crash + observe
  (void)swat;
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 1u);
}

TEST(Failover, MultipleIndependentShardFailovers) {
  auto opts = ha_options();
  opts.server_nodes = 3;
  opts.shards_per_node = 2;  // 6 shards
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), "v"), Status::kOk);
  }
  cluster.run_for(50 * kMillisecond);

  cluster.crash_primary(1);
  cluster.crash_primary(4);
  cluster.run_for(6 * kSecond);
  EXPECT_EQ(cluster.failovers(), 2u);

  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster.get(format_key(static_cast<std::uint64_t>(i))).has_value()) << i;
  }
}

}  // namespace
}  // namespace hydra
