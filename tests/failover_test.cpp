// High-availability tests: SWAT-driven failover, promotion of secondaries,
// client rerouting, data survival, SWAT leader replacement.
#include <string>

#include <gtest/gtest.h>

#include "common/keygen.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "hydradb/swat.hpp"

namespace hydra {
namespace {

db::ClusterOptions ha_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.replicas = 1;
  opts.enable_swat = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  // Failover tests wait for session expiry; keep the client patient enough
  // to ride through it but quick enough to retry often.
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  return opts;
}

TEST(Failover, SwatPromotesSecondaryAfterPrimaryCrash) {
  db::HydraCluster cluster(ha_options());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), Status::kOk);
  }
  cluster.run_for(10 * kMillisecond);  // drain replication

  const ShardId victim = 0;
  const auto secondaries_before = cluster.secondaries_of(victim).size();
  ASSERT_EQ(secondaries_before, 1u);

  cluster.crash_primary(victim);
  // Session timeout (2s) + sweep + watch + promotion.
  cluster.run_for(5 * kSecond);

  EXPECT_EQ(cluster.failovers(), 1u);
  ASSERT_NE(cluster.shard(victim), nullptr);
  EXPECT_TRUE(cluster.shard(victim)->alive());
  // Promotion consumes one replica but must respawn a replacement, or every
  // failover would permanently shrink the replication factor.
  ASSERT_EQ(cluster.secondaries_of(victim).size(), 1u);
  EXPECT_TRUE(cluster.secondaries_of(victim)[0]->alive());
  // And it publishes a monotonic routing epoch.
  EXPECT_EQ(cluster.routing_epoch(), 1u);
  EXPECT_EQ(cluster.coordinator().data("/routing/version"), "1");
}

TEST(Failover, DataSurvivesPrimaryCrash) {
  db::HydraCluster cluster(ha_options());
  // Write everything through the network so replication is exercised.
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), Status::kOk);
  }
  cluster.run_for(50 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // Every key must still be readable -- those owned by shard 0 now come
  // from the promoted replica; clients re-route via timeout + reconnect.
  for (int i = 0; i < 60; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    auto v = cluster.get(key);
    ASSERT_TRUE(v.has_value()) << "lost key " << key << " after failover";
    EXPECT_EQ(*v, synth_value(static_cast<std::uint64_t>(i)));
  }
}

TEST(Failover, WritesResumeAfterFailover) {
  db::HydraCluster cluster(ha_options());
  ASSERT_EQ(cluster.put("before-crash", "v1"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);

  EXPECT_EQ(cluster.put("after-crash", "v2"), Status::kOk);
  EXPECT_EQ(*cluster.get("after-crash"), "v2");
  EXPECT_EQ(*cluster.get("before-crash"), "v1");
}

TEST(Failover, StaleRemotePointersFailSafelyAfterCrash) {
  db::HydraCluster cluster(ha_options());
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  ASSERT_TRUE(cluster.get("k").has_value());  // mints + caches pointer
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(cluster.owner_of("k"));
  cluster.run_for(5 * kSecond);

  // The cached pointer references the dead primary's (revoked) arena; the
  // client must detect the failure and still produce the right answer.
  auto v = cluster.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
}

TEST(Failover, RepeatedFailoversKeepFactorAndData) {
  db::HydraCluster cluster(ha_options());  // 1 replica
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // Crash the promoted primary too: the replacement replica spawned by the
  // first promotion (bootstrap-copied from the survivor) takes over.
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 2u);
  ASSERT_EQ(cluster.secondaries_of(0).size(), 1u);
  // The routing epoch stays strictly monotonic across promotions.
  EXPECT_EQ(cluster.routing_epoch(), 2u);
  EXPECT_EQ(cluster.coordinator().data("/routing/version"), "2");
  if (cluster.owner_of("k") == 0) {
    auto v = cluster.get("k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "v");
  }
}

TEST(Failover, FailoverWithAllReplicasDeadLosesAvailabilityGracefully) {
  db::HydraCluster cluster(ha_options());  // 1 replica
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // The replica dies first, then the primary: nothing is promotable.
  cluster.crash_secondary(0, 0);
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 0u);
  // The shard is gone; operations on its keys fail instead of hanging.
  if (cluster.owner_of("k") == 0) {
    Status status = Status::kOk;
    EXPECT_FALSE(cluster.get("k", 0, &status).has_value());
    EXPECT_NE(status, Status::kOk);
  }
}

TEST(Failover, SwatLeaderDeathHandsOverReactions) {
  auto opts = ha_options();
  opts.swat_members = 2;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // Kill the SWAT leader first; the next member must take over failovers.
  // (Member sessions expire after the coordinator session timeout.)
  cluster.run_for(kSecond);
  auto* swat = &cluster;  // SWAT is internal; exercise via crash + observe
  (void)swat;
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 1u);
}

// --------------------------------------------------------------- timelines
//
// The chaos PR fixed three crash-path races (promotion fencing, torn-ack
// recovery, promotion ring drain) and pinned their *outcomes*; these tests
// pin the *order* of the recovery steps via TraceQuery happened-before
// assertions, so a regression that reorders the steps but stumbles into the
// right end state still fails.

TEST(FailoverTimeline, CrashPromotionDrainsRingBeforePublishingEpoch) {
  obs::Plane plane;
  auto opts = ha_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 50; ++i) {
    const auto k = static_cast<std::uint64_t>(i);
    ASSERT_EQ(cluster.put(format_key(k), synth_value(k)), Status::kOk);
  }
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  const auto q = plane.query();
  // Full lifecycle chain, in order: the crash is observed by SWAT, promotion
  // starts, the survivor's parked ring records replay BEFORE the new epoch
  // is published (the ring-drain fix: without the drain, acked writes the
  // replica's poll loop had not reached died with the promotion).
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kCrashInjected,
                                obs::TraceKind::kPrimaryDeathObserved));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kPrimaryDeathObserved,
                                obs::TraceKind::kPromotionStart));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kPromotionStart,
                                obs::TraceKind::kRingDrained));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kRingDrained,
                                obs::TraceKind::kEpochPublished));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kEpochPublished,
                                obs::TraceKind::kPromotionDone));
  // The promotion-time drain actually replayed a non-empty log stream.
  const auto drains = q.of(obs::TraceKind::kRingDrained, 0);
  ASSERT_FALSE(drains.empty());
  EXPECT_GT(drains.back().a, 0u) << "promotion drained an empty ring";
}

TEST(FailoverTimeline, SuppressedPrimaryIsFencedBeforeRingDrain) {
  obs::Plane plane;
  auto opts = ha_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // The fencing race: heartbeat suppression expires the session while the
  // primary keeps running. Whether SWAT's promotion fences it or the next
  // heartbeat tick self-fences it first, SOME fence must precede the
  // promotion's ring drain -- promoting under a still-serving primary would
  // split-brain.
  cluster.suppress_heartbeats(0, 10 * kSecond);
  cluster.run_for(8 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  const auto q = plane.query();
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kHeartbeatSuppressed,
                                obs::TraceKind::kPromotionStart));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kFenced, obs::TraceKind::kRingDrained));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kRingDrained,
                                obs::TraceKind::kEpochPublished));
  ASSERT_TRUE(q.first(obs::TraceKind::kFenced).has_value());
  const std::uint64_t fence_kind = q.first(obs::TraceKind::kFenced)->a;
  EXPECT_TRUE(fence_kind == 1 || fence_kind == 2);  // self-fence or promotion-fence
  // After the fence the old primary is dead: writes still land (new primary).
  EXPECT_EQ(cluster.put("k2", "v2"), Status::kOk);
}

TEST(FailoverTimeline, TornAckRecoversThroughProbeThenAck) {
  obs::Plane plane;
  auto opts = ha_options();
  opts.obs = &plane;
  opts.replication.ack_interval = 1;  // every record requests an ack
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("warm", "up"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  // Tear the next ack write to shard 0's primary: the ack slot holds a
  // partial frame, which the primary must detect and re-solicit (the
  // torn-ack probe fix) instead of dropping the ack on the floor.
  auto* sh = cluster.shard(0);
  ASSERT_NE(sh, nullptr);
  ASSERT_NE(sh->replicator(), nullptr);
  bool armed = true;
  cluster.fabric().set_write_fault_hook(
      [&](NodeId, NodeId dst, const fabric::RemoteAddr& addr,
          std::uint32_t) -> fabric::WriteFault {
        if (!armed || dst != sh->node()) return {};
        for (const std::uint32_t rk : sh->replicator()->ack_rkeys()) {
          if (rk == addr.rkey) {
            armed = false;
            return {fabric::WriteFault::Kind::kTorn, 8};
          }
        }
        return {};
      });
  // Write through shard 0 (any key owned by it).
  int hits = 0;
  for (int i = 0; i < 20 && hits < 3; ++i) {
    const std::string key = "t-" + std::to_string(i);
    if (cluster.owner_of(key) != 0) continue;
    ++hits;
    ASSERT_EQ(cluster.put(key, "v"), Status::kOk);
  }
  ASSERT_GT(hits, 0);
  cluster.run_for(50 * kMillisecond);  // ack deadline + probe + re-ack

  const auto q = plane.query();
  // Torn ack detected -> probe written -> a fresh ack decoded after it.
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kTornAck, obs::TraceKind::kAckProbe));
  const auto probe = q.first(obs::TraceKind::kAckProbe);
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(q.first_after(obs::TraceKind::kAckReceived, probe->seq).has_value())
      << "no acknowledgement ever arrived after the ack probe";
  EXPECT_FALSE(armed) << "fault never fired: no ack write was torn";
}

// THE headline regression: a promotion moves a shard's data to a different
// node (different arena, different rkey), but a client may hold a cached
// remote pointer into the fenced primary with seconds of lease left. The
// lease check alone would happily post a one-sided read against the dead
// arena. The epoch stamped into the pointer at cache time must be compared
// against the live routing epoch before EVERY one-sided read, so after the
// promotion publishes epoch N+1 not a single RDMA Read is posted against
// the fenced primary's rkey.
TEST(FailoverTimeline, NoRdmaReadAgainstFencedPrimaryRkey) {
  obs::Plane plane;
  auto opts = ha_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);

  const ShardId victim = 0;
  std::string key;
  for (int i = 0; i < 256; ++i) {
    key = "hot-" + std::to_string(i);
    if (cluster.owner_of(key) == victim) break;
  }
  ASSERT_EQ(cluster.owner_of(key), victim);
  ASSERT_EQ(cluster.put(key, "v"), Status::kOk);

  // Pump popularity so the minted lease far outlives the ~2.5s failover
  // window -- the scenario where lease checking alone cannot save us.
  auto* sh = cluster.shard(victim);
  ASSERT_NE(sh, nullptr);
  for (int i = 0; i < 6; ++i) {
    (void)sh->store().get(key, cluster.scheduler().now(), /*grant_lease=*/true);
  }
  ASSERT_TRUE(cluster.get(key).has_value());  // mints + caches the pointer
  cluster.run_for(10 * kMillisecond);

  // Sanity: the cached pointer is live -- this GET is a one-sided read.
  auto* cl = cluster.clients().front();
  const std::uint64_t hits_before = cl->stats().ptr_hits;
  ASSERT_EQ(*cluster.get(key), "v");
  ASSERT_GT(cl->stats().ptr_hits, hits_before) << "RDMA-read path never engaged";
  const std::uint32_t fenced_rkey = sh->arena_rkey();

  cluster.crash_primary(victim);
  cluster.run_for(5 * kSecond);
  ASSERT_EQ(cluster.failovers(), 1u);
  const auto epoch = plane.query().last(obs::TraceKind::kEpochPublished);
  ASSERT_TRUE(epoch.has_value());

  // Post-promotion GETs: correct value, stale pointer invalidated, and zero
  // reads posted against the fenced rkey after the epoch bump.
  const std::uint64_t invalidations_before = cl->stats().epoch_invalidations;
  ASSERT_EQ(*cluster.get(key), "v");
  ASSERT_EQ(*cluster.get(key), "v");
  EXPECT_GT(cl->stats().epoch_invalidations, invalidations_before)
      << "the epoch check never fired for the stale pointer";

  const auto q = plane.query();
  std::size_t stale_reads = 0;
  std::size_t pre_crash_reads = 0;
  for (const auto& rec : q.of(obs::TraceKind::kReadPosted)) {
    if (rec.b != fenced_rkey) continue;
    if (rec.seq > epoch->seq) {
      ++stale_reads;
    } else {
      ++pre_crash_reads;
    }
  }
  EXPECT_GT(pre_crash_reads, 0u) << "test vacuous: key was never RDMA-read";
  EXPECT_EQ(stale_reads, 0u)
      << stale_reads << " one-sided reads posted against the fenced rkey";
}

// Bugfix (DESIGN.md §14 double-promotion guard): the primary's coordinator
// session can expire while a fast-failover agreement round is still running
// -- here the round is stretched across the 2s session timeout with a huge
// revocation latency. SWAT's watch fires mid-round; acting on it would race
// the round's own promotion and publish two epochs for one death. The
// pending event must stay deferred until the round ends, at which point the
// fast promotion has re-registered the znode and the legacy path no-ops.
TEST(Failover, SessionExpiryMidAgreementRoundDoesNotDoublePromote) {
  obs::Plane plane;
  auto opts = ha_options();
  opts.obs = &plane;
  opts.fast_failover = true;
  // Stretch the round well past the session sweep that reaps the dead
  // primary's znode (~2.5s): suspicion fires shortly after the crash, the
  // single revocation then takes 2.6s to confirm. Pulses are slowed to 5ms
  // so 8s of pulse traffic cannot evict the ballot records this test reads
  // from the bounded per-node trace rings.
  opts.fast.revoke_latency = 2600 * kMillisecond;
  opts.fast.pulse_interval = 5 * kMillisecond;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);

  cluster.crash_primary(0);
  cluster.run_for(8 * kSecond);  // round end (~2.6s) + post-expiry slack

  // Exactly one promotion, one epoch -- and SWAT never acted on the death
  // itself (the deferred event found the znode re-registered on redrain).
  EXPECT_EQ(cluster.failovers(), 1u);
  EXPECT_EQ(cluster.routing_epoch(), 1u);
  const auto q = plane.query();
  EXPECT_EQ(q.count(obs::TraceKind::kPromotionDone, 0), 1u);
  EXPECT_EQ(q.count(obs::TraceKind::kEpochPublished, 0), 1u);
  EXPECT_EQ(q.count(obs::TraceKind::kPrimaryDeathObserved), 0u);
  // The round really did span the session expiry: the ballot was cast after
  // the coordinator reaped the znode (seq order pins the overlap).
  const auto ballot = q.first(obs::TraceKind::kBallotCast);
  ASSERT_TRUE(ballot.has_value());
  EXPECT_GT(ballot->at, 2 * kSecond);
  EXPECT_EQ(*cluster.get("k"), "v");
  EXPECT_EQ(cluster.put("k2", "v2"), Status::kOk);
}

TEST(Failover, MultipleIndependentShardFailovers) {
  auto opts = ha_options();
  opts.server_nodes = 3;
  opts.shards_per_node = 2;  // 6 shards
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), "v"), Status::kOk);
  }
  cluster.run_for(50 * kMillisecond);

  cluster.crash_primary(1);
  cluster.crash_primary(4);
  cluster.run_for(6 * kSecond);
  EXPECT_EQ(cluster.failovers(), 2u);

  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(cluster.get(format_key(static_cast<std::uint64_t>(i))).has_value()) << i;
  }
}

}  // namespace
}  // namespace hydra
