// Connection-scalability tests (DESIGN.md §10): QP multiplexing over shared
// request rings, lazy channel establishment, idle/failure reclamation, and
// the index-driven dirty scheduler's O(active)-per-wakeup guarantee with
// tens of thousands of registered connections.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/keygen.hpp"
#include "fabric/fabric.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "server/dirty_scheduler.hpp"
#include "server/shard.hpp"

namespace hydra {
namespace {

// --------------------------------------------------- dirty scheduler unit

TEST(DirtyScheduler, FifoDedupAndBoundsCheck) {
  server::DirtyScheduler d;
  ASSERT_EQ(d.add_endpoint(), 0u);
  ASSERT_EQ(d.add_endpoint(), 1u);
  ASSERT_EQ(d.add_endpoint(), 2u);
  EXPECT_EQ(d.endpoints(), 3u);
  EXPECT_TRUE(d.empty());

  // Out-of-range marks are ignored (a write past the registered endpoints).
  EXPECT_FALSE(d.mark(3));
  EXPECT_FALSE(d.mark(0xffffffffu));
  EXPECT_TRUE(d.empty());

  // FIFO order, duplicates suppressed while queued.
  EXPECT_TRUE(d.mark(2));
  EXPECT_TRUE(d.mark(0));
  EXPECT_FALSE(d.mark(2));  // already queued
  EXPECT_EQ(d.active(), 2u);
  EXPECT_EQ(d.pop(), 2u);
  EXPECT_EQ(d.pop(), 0u);
  EXPECT_TRUE(d.empty());
}

TEST(DirtyScheduler, RemarkAfterPopRequeues) {
  server::DirtyScheduler d;
  d.add_endpoint();
  EXPECT_TRUE(d.mark(0));
  EXPECT_EQ(d.pop(), 0u);
  // The flag cleared on pop: traffic landing during the sweep re-queues.
  EXPECT_TRUE(d.mark(0));
  EXPECT_EQ(d.pop(), 0u);
  EXPECT_TRUE(d.empty());
}

// Property check: seeded-random add/mark/pop/deregister/reactivate
// sequences cross-checked step-by-step against a naive reference model.
// Pins the fairness contract (FIFO sweep order), no lost dirty marks, no
// duplicate queueing, and no resurrection of a deregistered endpoint.
TEST(DirtyScheduler, RandomSequencesMatchNaiveModel) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256 rng(seed);
    server::DirtyScheduler d;
    std::vector<bool> queued, dead;    // the naive model
    std::deque<std::uint32_t> order;   // model FIFO of dirty ids
    std::uint32_t endpoints = 0;
    for (int step = 0; step < 2000; ++step) {
      switch (rng.below(10)) {
        case 0: {  // register
          ASSERT_EQ(d.add_endpoint(), endpoints) << "seed " << seed;
          ++endpoints;
          queued.push_back(false);
          dead.push_back(false);
          break;
        }
        case 1: {  // deregister (often out of range or already dead)
          const auto id = static_cast<std::uint32_t>(rng.below(endpoints + 2));
          d.deregister(id);
          if (id < endpoints && !dead[id]) {
            dead[id] = true;
            if (queued[id]) {
              queued[id] = false;
              order.erase(std::find(order.begin(), order.end(), id));
            }
          }
          break;
        }
        case 2: {  // reactivate
          const auto id = static_cast<std::uint32_t>(rng.below(endpoints + 2));
          d.reactivate(id);
          if (id < endpoints) dead[id] = false;
          break;
        }
        case 3:
        case 4: {  // sweep one
          if (order.empty()) {
            ASSERT_TRUE(d.empty()) << "seed " << seed << " step " << step;
            break;
          }
          const std::uint32_t want = order.front();
          order.pop_front();
          queued[want] = false;
          ASSERT_FALSE(d.empty()) << "seed " << seed << " step " << step;
          ASSERT_EQ(d.pop(), want) << "seed " << seed << " step " << step;
          break;
        }
        default: {  // mark (the hot path; ids sometimes out of range)
          const auto id = static_cast<std::uint32_t>(rng.below(endpoints + 2));
          const bool expect_newly = id < endpoints && !queued[id] && !dead[id];
          ASSERT_EQ(d.mark(id), expect_newly)
              << "seed " << seed << " step " << step << " id " << id;
          if (expect_newly) {
            queued[id] = true;
            order.push_back(id);
          }
          break;
        }
      }
      ASSERT_EQ(d.active(), order.size()) << "seed " << seed << " step " << step;
      ASSERT_EQ(d.empty(), order.empty()) << "seed " << seed << " step " << step;
    }
    // Drain: every queued mark must surface exactly once, in FIFO order,
    // and nothing dead may come out.
    while (!order.empty()) {
      const std::uint32_t want = order.front();
      order.pop_front();
      EXPECT_FALSE(dead[want]) << "seed " << seed;
      ASSERT_FALSE(d.empty()) << "seed " << seed;
      ASSERT_EQ(d.pop(), want) << "seed " << seed;
    }
    EXPECT_TRUE(d.empty()) << "seed " << seed;
  }
}

// --------------------------------------------------------- mux end to end

struct MuxRunResult {
  std::uint64_t qp_connects = 0;
  std::uint64_t mux_requests = 0;
  std::uint64_t channels_opened = 0;
};

/// 50 clients on 2 nodes against 2 shards; every client writes and reads
/// back 4 keys. Returns the connection census for the chosen wiring.
MuxRunResult run_fifty_clients(bool mux) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 2;
  opts.client_nodes = 2;
  opts.clients_per_node = 25;
  opts.enable_swat = false;
  opts.mux_connections = mux;
  // Long enough that the reaper never fires mid-test; idle reclamation has
  // its own test below.
  opts.mux.idle_timeout = kSecond;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  for (int c = 0; c < 50; ++c) {
    for (int j = 0; j < 4; ++j) {
      const auto k = format_key(static_cast<std::uint64_t>(c + 50 * j));
      EXPECT_EQ(cluster.put(k, "v-" + k, c), Status::kOk);
    }
  }
  for (int c = 0; c < 50; ++c) {
    for (int j = 0; j < 4; ++j) {
      const auto k = format_key(static_cast<std::uint64_t>(c + 50 * j));
      auto got = cluster.get(k, c);
      EXPECT_TRUE(got.has_value()) << k;
      if (got.has_value()) EXPECT_EQ(*got, "v-" + k);
    }
  }

  MuxRunResult r;
  r.qp_connects = cluster.fabric().stats().qp_connects;
  for (ShardId s = 0; s < cluster.shard_count(); ++s) {
    r.mux_requests += cluster.shard(s)->stats().mux_requests;
  }
  for (int n = 0; n < opts.client_nodes; ++n) {
    if (auto* m = cluster.node_mux(n)) r.channels_opened += m->stats().channels_opened;
  }
  return r;
}

TEST(ConnScale, MuxSharesOneQpPerNodeShardPair) {
  const MuxRunResult legacy = run_fifty_clients(false);
  const MuxRunResult muxed = run_fifty_clients(true);

  // Legacy wiring: one QP per client per shard it talks to -- at least one
  // per client. Mux wiring: at most client_nodes x shards shared QPs.
  EXPECT_GE(legacy.qp_connects, 50u);
  EXPECT_EQ(legacy.mux_requests, 0u);
  EXPECT_LE(muxed.qp_connects, 4u);
  EXPECT_GT(muxed.mux_requests, 0u);
  EXPECT_GE(muxed.channels_opened, 2u);
  EXPECT_LE(muxed.channels_opened, 4u);
}

// ------------------------------------------------------- idle reclamation

TEST(ConnScale, IdleChannelReclaimedAndLazilyReopened) {
  obs::Plane plane;
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.mux_connections = true;  // default mux config: 10 ms idle timeout
  opts.shard_template.store.arena_bytes = 8 << 20;
  opts.obs = &plane;
  db::HydraCluster cluster(opts);

  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  EXPECT_EQ(cluster.fabric().live_qp_pairs(), 1u);  // the one shared channel

  // Nothing talks for 100 ms: the reaper must close the channel and return
  // its QP to the fabric pool, dropping the NIC's census back to zero.
  cluster.run_for(100 * kMillisecond);
  ASSERT_NE(cluster.node_mux(0), nullptr);
  EXPECT_GE(cluster.node_mux(0)->stats().reclaimed_idle, 1u);
  EXPECT_EQ(cluster.fabric().live_qp_pairs(), 0u);
  EXPECT_GE(plane.query().count(obs::TraceKind::kMuxChannelReclaimed), 1u);

  // The next op re-establishes lazily -- and reuses the pooled QP slot.
  auto got = cluster.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v");
  EXPECT_GE(cluster.fabric().stats().qp_slot_reuses, 1u);
  EXPECT_GE(cluster.node_mux(0)->stats().channels_opened, 2u);
}

// -------------------------------------------------- channel death salvage

TEST(ConnScale, KillMuxChannelMidFlightRetransmitsEverything) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.mux_connections = true;
  opts.mux.idle_timeout = kSecond;
  opts.client_template.window = 8;
  opts.client_template.request_timeout = kMillisecond;
  opts.client_template.max_retries = 50;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  int ok = 0;
  auto* c = cluster.clients()[0];
  for (int i = 0; i < 20; ++i) {
    c->put(format_key(static_cast<std::uint64_t>(i)), "val-" + std::to_string(i),
           [&ok](Status s) { ok += s == Status::kOk; });
  }
  // Let the channel open and several writes get onto the wire, then kill the
  // shared QP abruptly -- without telling the mux layer.
  cluster.run_for(20 * kMicrosecond);
  ASSERT_TRUE(cluster.kill_mux_channel(0, 0));
  cluster.run_for(200 * kMillisecond);

  // Every op must complete Ok: the timed-out endpoints reported the failure,
  // the channel was torn down and lazily re-established, and the salvaged
  // ops were retransmitted.
  EXPECT_EQ(ok, 20);
  EXPECT_GE(cluster.node_mux(0)->stats().reclaimed_failure, 1u);
  for (int i = 0; i < 20; ++i) {
    auto got = cluster.get(format_key(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, "val-" + std::to_string(i));
  }
}

// A stale channel generation discovered on the one-sided read path must
// salvage the logical connection: in-flight and queued ops re-submit through
// a fresh channel instead of being silently abandoned (their callbacks must
// all still fire).
TEST(ConnScale, StaleMuxGenerationSalvagesInFlightOps) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.mux_connections = true;
  opts.mux.idle_timeout = kSecond;
  opts.client_template.window = 8;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  // Seed a key and cache its remote pointer on client 0.
  ASSERT_EQ(cluster.put("k1", "v1"), Status::kOk);
  ASSERT_EQ(*cluster.get("k1"), "v1");

  // Fill several ring slots with in-flight PUTs (issued, not yet answered).
  int ok = 0;
  auto* c = cluster.clients()[0];
  for (int i = 0; i < 6; ++i) {
    c->put(format_key(static_cast<std::uint64_t>(i)), "val-" + std::to_string(i),
           [&ok](Status s) { ok += s == Status::kOk; });
  }

  // Another endpoint on the shared channel reports failure: the generation
  // bumps underneath this client while its requests are outstanding.
  auto* mux = cluster.node_mux(0);
  ASSERT_NE(mux, nullptr);
  auto* ch = mux->peek_channel(0);
  ASSERT_NE(ch, nullptr);
  ASSERT_TRUE(ch->open);
  mux->report_failure(0, ch->generation);

  // The next cached-pointer GET sees the stale generation. It must salvage
  // the connection -- every in-flight PUT retries and completes -- not drop
  // it with the ops' callbacks cancelled.
  auto got = cluster.get("k1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v1");
  cluster.run_for(200 * kMillisecond);
  EXPECT_EQ(ok, 6);
  for (int i = 0; i < 6; ++i) {
    auto v = cluster.get(format_key(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "val-" + std::to_string(i));
  }
}

// A credit given back because the logical connection vanished mid-acquire
// must flow through the channel's release path: the oldest parked waiter
// gets it, rather than the slot being freed behind the waiters' backs.
TEST(ConnScale, RecycleHandsFreedCreditToOldestWaiter) {
  sim::Scheduler sched;
  client::NodeMux mux(sched, 0, client::NodeMuxConfig{});
  mux.set_opener([](ShardId, client::NodeMux::MuxWire* out) {
    out->ring_slots = 1;  // a single credit forces the second acquire to park
    return true;
  });
  auto* ch = mux.channel_to(0);
  ASSERT_NE(ch, nullptr);

  int grants = 0;
  std::uint32_t first_slot = 99;
  mux.acquire(0, ch->generation, [&](client::NodeMux::Channel* c, std::uint32_t s) {
    ASSERT_NE(c, nullptr);
    ++grants;
    first_slot = s;
  });
  ASSERT_EQ(grants, 1);
  ASSERT_EQ(first_slot, 0u);

  bool waiter_granted = false;
  mux.acquire(0, ch->generation, [&](client::NodeMux::Channel* c, std::uint32_t s) {
    waiter_granted = c != nullptr;
    EXPECT_EQ(s, 0u);
  });
  EXPECT_FALSE(waiter_granted);  // parked: the ring is full
  EXPECT_EQ(mux.stats().credit_waits, 1u);

  // The first holder's logical connection vanished; it gives the credit
  // back via recycle(). The parked waiter must be woken with that slot.
  mux.recycle(*ch, first_slot);
  EXPECT_TRUE(waiter_granted);
  EXPECT_EQ(ch->in_flight, 1u);  // the credit changed hands, never freed

  // With no waiters, recycle frees the credit outright.
  mux.recycle(*ch, 0);
  EXPECT_EQ(ch->in_flight, 0u);
  EXPECT_FALSE(ch->slot_busy[0]);
}

// After a chaos QP kill, the fabric pool may hand the dead channel's QP
// slot to a brand-new connection before the endpoints' timeouts tear the
// channel down. The closer must recognize the reused slot (generation
// mismatch) and leave the new connection alone.
TEST(ConnScale, CloserIgnoresReusedQpSlot) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.mux_connections = true;
  opts.mux.idle_timeout = kSecond;
  opts.client_template.request_timeout = kMillisecond;
  opts.client_template.max_retries = 50;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  // Abrupt async QP error; the pair goes to the fabric reuse pool while the
  // mux layer still believes the channel is healthy.
  ASSERT_TRUE(cluster.kill_mux_channel(0, 0));

  // An unrelated connection (between two bystander machines) grabs the
  // pooled slot immediately.
  const NodeId ba = cluster.fabric().add_node("bystander-a").id();
  const NodeId bb = cluster.fabric().add_node("bystander-b").id();
  auto [na, nb] = cluster.fabric().connect(ba, bb);
  ASSERT_GE(cluster.fabric().stats().qp_slot_reuses, 1u);
  ASSERT_TRUE(na->open());
  const std::uint32_t bystander_gen = na->generation();

  // Drive the client through its timeout -> report_failure -> closer path
  // (the closer holds the dead channel's raw QP pointer) and recovery.
  ASSERT_EQ(cluster.put("k2", "v2"), Status::kOk);
  cluster.run_for(50 * kMillisecond);

  // The closer must NOT have torn down the unrelated reused connection.
  // Same *incarnation*, not merely open(): an errant disconnect would bump
  // the generation even if a later reuse left the slot open again.
  EXPECT_TRUE(na->open());
  EXPECT_TRUE(nb->open());
  EXPECT_EQ(na->generation(), bystander_gen);
  EXPECT_EQ(na->local_node(), ba);
  EXPECT_GE(cluster.node_mux(0)->stats().reclaimed_failure, 1u);
  EXPECT_EQ(*cluster.get("k"), "v");
  EXPECT_EQ(*cluster.get("k2"), "v2");
}

// -------------------------------------------- read-channel reap deferral

// The reaper bug this pins: an idle-past-timeout read channel used to be
// reclaimable even while a just-issued one-sided replica read was in flight
// on its QP -- the disconnect flushed the read mid-air. The fix refcounts
// in-flight replica reads (begin/end_replica_read) and defers the reap
// while the pin is held, however long the channel idles.
TEST(ConnScale, ReadChannelReapDeferredWhilePinned) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId a = fabric.add_node("reader").id();
  const NodeId b = fabric.add_node("target").id();

  client::NodeMuxConfig mcfg;  // defaults: 10 ms idle, 5 ms reap interval
  client::NodeMux mux(sched, a, mcfg);
  int opens = 0;
  int closes = 0;
  mux.set_read_opener([&](NodeId target) -> fabric::QueuePair* {
    ++opens;
    auto [cq, sq] = fabric.connect(a, target);
    (void)sq;
    return cq;
  });
  mux.set_read_closer([&](NodeId, fabric::QueuePair* qp, std::uint32_t gen) {
    ++closes;
    if (qp != nullptr && qp->open() && qp->generation() == gen) {
      fabric.disconnect(qp);
    }
  });

  fabric::QueuePair* qp = mux.begin_replica_read(b);
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(opens, 1);

  // The pin outlives many reap ticks past the idle timeout: the reaper must
  // defer every time, and the QP must stay open for the in-flight read.
  sched.run_for(100 * kMillisecond);
  EXPECT_EQ(closes, 0);
  EXPECT_TRUE(qp->open());
  ASSERT_NE(mux.peek_read_channel(b), nullptr);
  EXPECT_TRUE(mux.peek_read_channel(b)->open);
  EXPECT_GE(mux.stats().read_reap_deferred, 1u);
  EXPECT_EQ(mux.stats().reclaimed_read_idle, 0u);

  // Unpin (the read completed): the next idle window reclaims the channel
  // and returns the QP to the fabric pool.
  mux.end_replica_read(b);
  sched.run_for(100 * kMillisecond);
  EXPECT_EQ(closes, 1);
  EXPECT_FALSE(mux.peek_read_channel(b)->open);
  EXPECT_EQ(mux.stats().reclaimed_read_idle, 1u);

  // The next replica read re-establishes lazily.
  fabric::QueuePair* qp2 = mux.begin_replica_read(b);
  ASSERT_NE(qp2, nullptr);
  EXPECT_TRUE(qp2->open());
  EXPECT_EQ(opens, 2);
  mux.end_replica_read(b);
}

// ------------------------------------------------- O(active) wakeup bound

// 50'000 registered connections, ONE of them dirty: the wakeup must sweep
// exactly that connection. A pre-refactor O(registered) scan would charge
// 50'000 poll_scan's (~2 ms of shard CPU); the index-driven scheduler
// charges one sweep plus one GET (well under 100 us).
TEST(ConnScale, WakeupIsOActiveAmongTensOfThousandsRegistered) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  obs::Plane plane;
  fabric.set_obs(&plane);
  const NodeId server_node = fabric.add_node("server").id();
  const NodeId client_node = fabric.add_node("clients").id();

  server::ShardConfig cfg;
  cfg.msg_slot_bytes = 256;
  cfg.ring_slots = 1;
  cfg.max_connections = 50'000;
  cfg.store.arena_bytes = 4 << 20;
  server::Shard shard(sched, fabric, server_node, cfg);

  auto [cq, sq] = fabric.connect(client_node, server_node);
  std::vector<std::byte> resp_ring(4096);
  auto* resp_mr = fabric.node(client_node).register_memory(resp_ring);

  constexpr std::uint32_t kConns = 50'000;
  std::vector<fabric::RemoteAddr> req_rings(kConns);
  for (std::uint32_t i = 0; i < kConns; ++i) {
    const auto res =
        shard.accept(sq, resp_mr->addr(0), 4096, static_cast<ClientId>(i), 1);
    ASSERT_TRUE(res.ok) << i;
    req_rings[i] = res.req_slot;
  }
  ASSERT_EQ(shard.connection_count(), kConns);

  proto::Request req;
  req.type = proto::MsgType::kGet;
  req.req_id = 1;
  req.client = 37'123;
  req.key = "absent-key";
  const auto payload = proto::encode_request(req);
  std::vector<std::byte> frame(proto::frame_size(payload.size()));
  proto::encode_frame(frame, payload);
  cq->post_write(frame, req_rings[37'123]);
  sched.run_until(sched.now() + kMillisecond);

  EXPECT_EQ(shard.stats().gets, 1u);
  EXPECT_EQ(shard.stats().responses, 1u);
  // One sweep, of the one dirty connection.
  EXPECT_EQ(plane.query().count(obs::TraceKind::kRingSweep), 1u);
  EXPECT_LT(shard.stats().busy_time, 100'000);
}

// ---------------------------------------------- mux header hardening + caps

// A corrupt or malicious MuxHeader::resp_slot past the endpoint's granted
// window must be dropped as malformed, never steered into an RDMA Write
// beyond the endpoint's response ring.
TEST(ConnScale, MuxRespSlotPastWindowDroppedAsMalformed) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId server_node = fabric.add_node("server").id();
  const NodeId client_node = fabric.add_node("clients").id();

  server::ShardConfig cfg;
  cfg.msg_slot_bytes = 256;
  cfg.mux_ring_slots = 8;
  cfg.store.arena_bytes = 4 << 20;
  server::Shard shard(sched, fabric, server_node, cfg);

  auto [cq, sq] = fabric.connect(client_node, server_node);
  std::vector<std::byte> resp_ring(2 * 256);  // exactly window=2 slots
  auto* resp_mr = fabric.node(client_node).register_memory(resp_ring);

  const auto grp = shard.accept_mux_group(sq);
  ASSERT_TRUE(grp.ok);
  const auto ep = shard.accept_mux_endpoint(grp.group, resp_mr->addr(0), 256, 1, 2);
  ASSERT_TRUE(ep.ok);
  ASSERT_EQ(ep.window, 2u);

  proto::Request req;
  req.type = proto::MsgType::kGet;
  req.req_id = 7;
  req.client = 1;
  req.key = "some-key";

  // resp_slot 5 >= the granted window of 2: must be counted malformed.
  auto evil = proto::encode_mux_request(proto::MuxHeader{ep.endpoint, 5}, req);
  std::vector<std::byte> evil_frame(proto::frame_size(evil.size()));
  proto::encode_frame(evil_frame, evil);
  cq->post_write(evil_frame, grp.req_ring);
  sched.run_until(sched.now() + kMillisecond);
  EXPECT_EQ(shard.stats().malformed, 1u);
  EXPECT_EQ(shard.stats().responses, 0u);
  EXPECT_EQ(shard.stats().gets, 0u);

  // An in-window resp_slot on the same endpoint still answers normally.
  auto good = proto::encode_mux_request(proto::MuxHeader{ep.endpoint, 1}, req);
  std::vector<std::byte> good_frame(proto::frame_size(good.size()));
  proto::encode_frame(good_frame, good);
  cq->post_write(good_frame, grp.req_ring);
  sched.run_until(sched.now() + kMillisecond);
  EXPECT_EQ(shard.stats().gets, 1u);
  EXPECT_EQ(shard.stats().responses, 1u);
  EXPECT_EQ(shard.stats().malformed, 1u);
}

// Failure/reopen cycles (what the chaos family drives) must not grow the
// shard's connection or endpoint tables: closed mux-group slots and
// deactivated endpoints are reused, and live groups/endpoints obey caps.
TEST(ConnScale, MuxReopenCyclesReuseSlotsAndObeyCaps) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId server_node = fabric.add_node("server").id();
  const NodeId client_node = fabric.add_node("clients").id();

  server::ShardConfig cfg;
  cfg.msg_slot_bytes = 256;
  cfg.mux_ring_slots = 8;
  cfg.max_connections = 2;
  cfg.max_mux_endpoints = 2;
  cfg.store.arena_bytes = 4 << 20;
  server::Shard shard(sched, fabric, server_node, cfg);

  auto [cq, sq] = fabric.connect(client_node, server_node);
  std::vector<std::byte> resp_ring(4096);
  auto* resp_mr = fabric.node(client_node).register_memory(resp_ring);

  // Repeated open/close cycles reuse one conns_ slot and one endpoint slot.
  std::uint32_t first_group = 0;
  for (int i = 0; i < 10; ++i) {
    const auto grp = shard.accept_mux_group(sq);
    ASSERT_TRUE(grp.ok) << i;
    if (i == 0) first_group = grp.group;
    EXPECT_EQ(grp.group, first_group) << i;
    const auto ep = shard.accept_mux_endpoint(grp.group, resp_mr->addr(0), 256, 1, 1);
    ASSERT_TRUE(ep.ok) << i;
    EXPECT_EQ(ep.endpoint, 0u) << i;
    shard.close_mux_group(grp.group);
  }
  EXPECT_EQ(shard.connection_count(), 1u);

  // Live-group admission cap: with max_connections=2, a third live group is
  // refused until one closes.
  const auto g1 = shard.accept_mux_group(sq);
  const auto g2 = shard.accept_mux_group(sq);
  ASSERT_TRUE(g1.ok);
  ASSERT_TRUE(g2.ok);
  EXPECT_FALSE(shard.accept_mux_group(sq).ok);

  // Live-endpoint cap: slots freed by a group close become available again.
  const auto e1 = shard.accept_mux_endpoint(g1.group, resp_mr->addr(0), 256, 1, 1);
  const auto e2 = shard.accept_mux_endpoint(g2.group, resp_mr->addr(0), 256, 2, 1);
  ASSERT_TRUE(e1.ok);
  ASSERT_TRUE(e2.ok);
  EXPECT_FALSE(shard.accept_mux_endpoint(g2.group, resp_mr->addr(0), 256, 3, 1).ok);
  shard.close_mux_group(g1.group);
  EXPECT_TRUE(shard.accept_mux_group(sq).ok);
  EXPECT_TRUE(shard.accept_mux_endpoint(g2.group, resp_mr->addr(0), 256, 3, 1).ok);
}

// -------------------------------------------- pipelined comparator guards

// The elastic-membership plane refuses to run over the pipelined comparator
// (its shards have no replication/migration hooks); the guard must hold on
// both entry points and leave the cluster serving.
TEST(ConnScale, PipelinedComparatorRefusesLiveMigration) {
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.pipelined_servers = true;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  EXPECT_EQ(cluster.add_shard_live(), kInvalidShard);
  EXPECT_FALSE(cluster.drain_shard_live(0));
  EXPECT_EQ(*cluster.get("k"), "v");
}

}  // namespace
}  // namespace hydra
