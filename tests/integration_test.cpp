// End-to-end integration tests: full client -> fabric -> shard -> store
// paths through the HydraCluster harness, covering message passing, remote
// pointer caching, guardian invalidation, leases, pointer sharing, server
// mode variants, replication and the YCSB runner.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/keygen.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "ycsb/runner.hpp"

namespace hydra {
namespace {

db::ClusterOptions small_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 2;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.enable_swat = false;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  return opts;
}

TEST(Integration, PutGetRemoveRoundTrip) {
  db::HydraCluster cluster(small_options());
  EXPECT_EQ(cluster.put("key-1", "value-1"), Status::kOk);
  auto v = cluster.get("key-1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "value-1");

  EXPECT_EQ(cluster.remove("key-1"), Status::kOk);
  Status status = Status::kOk;
  EXPECT_FALSE(cluster.get("key-1", 0, &status).has_value());
  EXPECT_EQ(status, Status::kNotFound);
}

TEST(Integration, InsertSemantics) {
  db::HydraCluster cluster(small_options());
  EXPECT_EQ(cluster.insert("k", "v1"), Status::kOk);
  EXPECT_EQ(cluster.insert("k", "v2"), Status::kExists);
  EXPECT_EQ(*cluster.get("k"), "v1");
}

TEST(Integration, GetMissingKeyReturnsNotFound) {
  db::HydraCluster cluster(small_options());
  Status status = Status::kOk;
  EXPECT_FALSE(cluster.get("never-inserted", 0, &status).has_value());
  EXPECT_EQ(status, Status::kNotFound);
}

TEST(Integration, KeysSpreadAcrossShards) {
  auto opts = small_options();
  opts.shards_per_node = 4;
  db::HydraCluster cluster(opts);
  std::set<ShardId> owners;
  for (int i = 0; i < 200; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    owners.insert(cluster.owner_of(key));
    ASSERT_EQ(cluster.put(key, "v"), Status::kOk);
  }
  EXPECT_EQ(owners.size(), 4u);
  // Every shard's store holds exactly the keys the ring routes to it.
  std::size_t total = 0;
  for (ShardId s = 0; s < 4; ++s) total += cluster.shard(s)->store().size();
  EXPECT_EQ(total, 200u);
}

TEST(Integration, SecondGetUsesRdmaReadAndBypassesServer) {
  db::HydraCluster cluster(small_options());
  cluster.put("hot", "value");
  auto* client = cluster.clients()[0];

  ASSERT_TRUE(cluster.get("hot").has_value());  // message GET, mints pointer
  const std::uint64_t reads_before = cluster.fabric().stats().rdma_reads;
  const std::uint64_t hits_before = client->stats().ptr_hits;
  const auto& shard_stats = cluster.shard(cluster.owner_of("hot"))->stats();
  const std::uint64_t server_gets_before = shard_stats.gets;

  ASSERT_EQ(*cluster.get("hot"), "value");  // must go through RDMA Read
  EXPECT_EQ(client->stats().ptr_hits, hits_before + 1);
  EXPECT_GT(cluster.fabric().stats().rdma_reads, reads_before);
  EXPECT_EQ(shard_stats.gets, server_gets_before) << "server CPU must be bypassed";
}

TEST(Integration, UpdateInvalidatesCachedPointerViaGuardian) {
  db::HydraCluster cluster(small_options());
  cluster.put("k", "old");
  ASSERT_TRUE(cluster.get("k").has_value());  // cache pointer
  ASSERT_EQ(*cluster.get("k"), "old");        // RDMA read hit

  cluster.put("k", "new");  // out-of-place update flips the guardian
  auto* client = cluster.clients()[0];
  const std::uint64_t invalid_before = client->stats().invalid_hits;
  // Next read-by-pointer sees the dead guardian and falls back.
  ASSERT_EQ(*cluster.get("k"), "new");
  EXPECT_EQ(client->stats().invalid_hits, invalid_before + 1);
}

TEST(Integration, RemoveInvalidatesCachedPointer) {
  db::HydraCluster cluster(small_options());
  cluster.put("k", "v");
  ASSERT_TRUE(cluster.get("k").has_value());
  ASSERT_TRUE(cluster.get("k").has_value());  // pointer cached + used
  cluster.remove("k");
  Status status = Status::kOk;
  EXPECT_FALSE(cluster.get("k", 0, &status).has_value());
  EXPECT_EQ(status, Status::kNotFound);
}

TEST(Integration, ColocatedClientsSharePointers) {
  auto opts = small_options();
  opts.clients_per_node = 2;
  opts.share_pointer_cache = true;
  db::HydraCluster cluster(opts);
  cluster.put("shared", "v", 0);
  ASSERT_TRUE(cluster.get("shared", /*client_idx=*/0).has_value());

  // Client 1 never fetched this key, yet its first GET is already a
  // pointer hit thanks to the shared cache (section 4.2.4).
  auto* c1 = cluster.clients()[1];
  const std::uint64_t hits_before = c1->stats().ptr_hits;
  ASSERT_EQ(*cluster.get("shared", /*client_idx=*/1), "v");
  EXPECT_EQ(c1->stats().ptr_hits, hits_before + 1);
}

TEST(Integration, ExclusiveCachesDoNotShare) {
  auto opts = small_options();
  opts.share_pointer_cache = false;  // the secure-isolation configuration
  db::HydraCluster cluster(opts);
  cluster.put("secret", "v", 0);
  ASSERT_TRUE(cluster.get("secret", 0).has_value());
  auto* c1 = cluster.clients()[1];
  const std::uint64_t hits_before = c1->stats().ptr_hits;
  ASSERT_EQ(*cluster.get("secret", 1), "v");
  EXPECT_EQ(c1->stats().ptr_hits, hits_before) << "isolated cache must miss";
}

TEST(Integration, RdmaReadDisabledAlwaysUsesMessages) {
  auto opts = small_options();
  opts.client_rdma_read = false;  // "RDMA Write Only" configuration
  db::HydraCluster cluster(opts);
  cluster.put("k", "v");
  ASSERT_TRUE(cluster.get("k").has_value());
  ASSERT_TRUE(cluster.get("k").has_value());
  EXPECT_EQ(cluster.fabric().stats().rdma_reads, 0u);
  EXPECT_EQ(cluster.clients()[0]->stats().ptr_hits, 0u);
}

TEST(Integration, SendRecvModeWorksEndToEnd) {
  auto opts = small_options();
  opts.server_mode = server::ServerMode::kSendRecv;
  opts.client_rdma_read = false;
  db::HydraCluster cluster(opts);
  EXPECT_EQ(cluster.put("k", "v"), Status::kOk);
  EXPECT_EQ(*cluster.get("k"), "v");
  EXPECT_GT(cluster.fabric().stats().sends, 0u);
}

TEST(Integration, PipelinedModeWorksEndToEnd) {
  auto opts = small_options();
  opts.pipelined_servers = true;
  opts.client_rdma_read = false;
  opts.enable_swat = false;
  db::HydraCluster cluster(opts);
  EXPECT_EQ(cluster.put("k", "v"), Status::kOk);
  EXPECT_EQ(*cluster.get("k"), "v");
}

TEST(Integration, ReplicationKeepsSecondariesInSync) {
  auto opts = small_options();
  opts.server_nodes = 2;
  opts.shards_per_node = 1;
  opts.replicas = 1;
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), Status::kOk);
  }
  cluster.run_for(10 * kMillisecond);  // let replication drain
  for (ShardId s = 0; s < 2; ++s) {
    auto secondaries = cluster.secondaries_of(s);
    ASSERT_EQ(secondaries.size(), 1u);
    EXPECT_EQ(secondaries[0]->store().size(), cluster.shard(s)->store().size());
  }
}

TEST(Integration, LargeValuesNeedLargerSlots) {
  auto opts = small_options();
  opts.shard_template.msg_slot_bytes = 64 * 1024;
  opts.client_template.resp_slot_bytes = 64 * 1024;
  db::HydraCluster cluster(opts);
  const std::string big_value(32 * 1024, 'B');
  EXPECT_EQ(cluster.put("big", big_value), Status::kOk);
  auto v = cluster.get("big");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, big_value);
}

TEST(Integration, OversizedValueFailsCleanly) {
  db::HydraCluster cluster(small_options());  // 16 KiB slots
  const std::string too_big(64 * 1024, 'X');
  EXPECT_EQ(cluster.put("big", too_big), Status::kInvalidArgument);
}

TEST(Integration, LeaseExpiryForcesMessagePathAndIsSafe) {
  db::HydraCluster cluster(small_options());
  cluster.put("k", "v");
  ASSERT_TRUE(cluster.get("k").has_value());  // lease granted (~1s, cold key)

  // Let every lease lapse, then churn the arena so the old memory would be
  // reused if it were freed prematurely.
  cluster.run_for(70 * kSecond);
  auto* client = cluster.clients()[0];
  const std::uint64_t misses_before = client->stats().ptr_misses;
  ASSERT_EQ(*cluster.get("k"), "v");  // expired lease -> message GET
  EXPECT_GT(client->stats().ptr_misses, misses_before);
}

TEST(Integration, YcsbRunnerProducesSaneNumbers) {
  auto opts = small_options();
  opts.shards_per_node = 2;
  opts.clients_per_node = 4;
  db::HydraCluster cluster(opts);

  ycsb::WorkloadSpec spec;
  spec.get_fraction = 0.9;
  spec.distribution = Distribution::kZipfian;
  spec.record_count = 2000;
  spec.operations = 8000;
  const auto result = ycsb::run_workload(cluster, spec);

  EXPECT_EQ(result.operations, 8000u);
  EXPECT_GT(result.throughput_mops, 0.0);
  EXPECT_GT(result.avg_get_us, 0.0);
  EXPECT_LT(result.avg_get_us, 1000.0);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.timeouts, 0u);
  EXPECT_GT(result.ptr_hits, 0u) << "zipfian re-reads should hit the pointer cache";
}

TEST(Integration, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    auto opts = small_options();
    db::HydraCluster cluster(opts);
    ycsb::WorkloadSpec spec;
    spec.get_fraction = 0.5;
    spec.record_count = 500;
    spec.operations = 2000;
    const auto r = ycsb::run_workload(cluster, spec);
    return std::make_tuple(r.elapsed, r.ptr_hits, r.invalid_hits,
                           cluster.fabric().stats().rdma_writes,
                           cluster.fabric().stats().rdma_reads);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hydra
