// Tests for RDMA logging replication: log delivery, relaxed vs strict acks,
// failure injection with rollback/resend, ring wrap-around, multi-secondary.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/keygen.hpp"
#include "fabric/fabric.hpp"
#include "replication/primary.hpp"
#include "replication/secondary.hpp"
#include "sim/scheduler.hpp"

namespace hydra::replication {
namespace {

/// Plain (non-fixture) rig so tests can instantiate more than one.
struct Rig {
  void build(int secondaries, ReplicationMode mode, std::uint32_t ack_interval = 32,
             std::uint32_t ring_bytes = 1 << 20) {
    primary_node = fabric.add_node("primary").id();
    owner = std::make_unique<sim::Actor>(sched, "primary-shard");
    PrimaryConfig cfg;
    cfg.mode = mode;
    cfg.ack_interval = ack_interval;
    primary = std::make_unique<ReplicationPrimary>(*owner, fabric, primary_node, cfg);
    for (int i = 0; i < secondaries; ++i) {
      const NodeId n = fabric.add_node("secondary-" + std::to_string(i)).id();
      SecondaryConfig scfg;
      scfg.primary_shard = 0;
      scfg.ring_bytes = ring_bytes;
      scfg.store.arena_bytes = 8 << 20;
      secs.push_back(std::make_unique<SecondaryShard>(sched, fabric, n, scfg));
      primary->add_secondary(*secs.back());
    }
  }

  proto::RepRecord make_put(const std::string& key, const std::string& value) {
    proto::RepRecord rec;
    rec.op = proto::MsgType::kPut;
    rec.op_time = sched.now();
    rec.key = key;
    rec.value = value;
    return rec;
  }

  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  NodeId primary_node = 0;
  std::unique_ptr<sim::Actor> owner;
  std::unique_ptr<ReplicationPrimary> primary;
  std::vector<std::unique_ptr<SecondaryShard>> secs;
};

class ReplicationTest : public ::testing::Test, protected Rig {};

TEST_F(ReplicationTest, RecordsReachTheSecondaryStore) {
  build(1, ReplicationMode::kLogRelaxed);
  for (int i = 0; i < 100; ++i) {
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), nullptr);
  }
  sched.run();
  EXPECT_EQ(secs[0]->applied_records(), 100u);
  EXPECT_EQ(secs[0]->applied_seq(), 100u);
  EXPECT_EQ(secs[0]->store().size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto r = secs[0]->store().get(format_key(static_cast<std::uint64_t>(i)), sched.now(), false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().value, synth_value(static_cast<std::uint64_t>(i)));
  }
}

TEST_F(ReplicationTest, RemoveRecordsReplay) {
  build(1, ReplicationMode::kLogRelaxed);
  primary->replicate(make_put("k", "v"), nullptr);
  proto::RepRecord del;
  del.op = proto::MsgType::kRemove;
  del.key = "k";
  primary->replicate(std::move(del), nullptr);
  sched.run();
  EXPECT_EQ(secs[0]->store().size(), 0u);
}

TEST_F(ReplicationTest, RelaxedCompletesInOneWriteRoundTrip) {
  build(1, ReplicationMode::kLogRelaxed);
  Time done_at = 0;
  primary->replicate(make_put("k", "v"), [&] { done_at = sched.now(); });
  sched.run();
  ASSERT_GT(done_at, 0u);
  // One write round trip: well under 10us; and no secondary CPU needed
  // before completion.
  EXPECT_LT(done_at, 10 * kMicrosecond);
}

TEST_F(ReplicationTest, StrictWaitsForSecondaryAck) {
  build(1, ReplicationMode::kStrictAck);
  Time done_at = 0;
  primary->replicate(make_put("k", "v"), [&] { done_at = sched.now(); });
  sched.run();
  ASSERT_GT(done_at, 0u);

  // Compare with relaxed on a fresh rig: strict must be substantially slower
  // (write + apply + ack write back).
  Rig relaxed_rig;
  relaxed_rig.build(1, ReplicationMode::kLogRelaxed);
  Time relaxed_done = 0;
  relaxed_rig.primary->replicate(relaxed_rig.make_put("k", "v"),
                                 [&] { relaxed_done = relaxed_rig.sched.now(); });
  relaxed_rig.sched.run();
  ASSERT_GT(relaxed_done, 0u);
  // Strict adds the secondary's detection + apply + ack round on top of the
  // log write that relaxed already pays.
  EXPECT_GT(done_at, relaxed_done + 500);
}

TEST_F(ReplicationTest, AckIntervalControlsAckTraffic) {
  build(1, ReplicationMode::kLogRelaxed, /*ack_interval=*/10);
  for (int i = 0; i < 100; ++i) {
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), "v"), nullptr);
  }
  sched.run();
  EXPECT_GE(primary->acks_received(), 9u);
  EXPECT_LE(primary->acks_received(), 12u);
}

TEST_F(ReplicationTest, TwoSecondariesBothConverge) {
  build(2, ReplicationMode::kLogRelaxed);
  for (int i = 0; i < 50; ++i) {
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), synth_value(1)), nullptr);
  }
  sched.run();
  for (auto& sec : secs) {
    EXPECT_EQ(sec->store().size(), 50u);
    EXPECT_EQ(sec->applied_seq(), 50u);
  }
}

TEST_F(ReplicationTest, RelaxedCallbackWaitsForAllSecondaries) {
  build(3, ReplicationMode::kLogRelaxed);
  int fired = 0;
  primary->replicate(make_put("k", "v"), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST_F(ReplicationTest, FailedRecordTriggersRollbackResendAndConverges) {
  build(1, ReplicationMode::kLogRelaxed, /*ack_interval=*/8);
  secs[0]->fail_next(1);  // first record fails to apply
  for (int i = 0; i < 40; ++i) {
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i))), nullptr);
  }
  sched.run();
  EXPECT_GT(primary->resends(), 0u);
  EXPECT_GT(secs[0]->discarded_records(), 0u);
  // Despite the failure, the replica converges to the full dataset.
  EXPECT_EQ(secs[0]->store().size(), 40u);
  EXPECT_EQ(secs[0]->applied_seq(), 40u);
  for (int i = 0; i < 40; ++i) {
    auto r = secs[0]->store().get(format_key(static_cast<std::uint64_t>(i)), sched.now(), false);
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r.value().value, synth_value(static_cast<std::uint64_t>(i)));
  }
}

TEST_F(ReplicationTest, MidStreamFailureConverges) {
  build(1, ReplicationMode::kStrictAck);
  bool armed = false;
  for (int i = 0; i < 60; ++i) {
    if (i == 30 && !armed) {
      secs[0]->fail_next(2);
      armed = true;
    }
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i) + 1)), nullptr);
  }
  sched.run();
  EXPECT_EQ(secs[0]->store().size(), 60u);
  EXPECT_EQ(secs[0]->applied_seq(), 60u);
}

TEST_F(ReplicationTest, SmallRingWrapsAndStillConverges) {
  // Ring fits only a handful of frames: exercises wrap markers and ring
  // pressure backlogging.
  build(1, ReplicationMode::kLogRelaxed, /*ack_interval=*/4, /*ring_bytes=*/2048);
  constexpr int kRecords = 300;
  for (int i = 0; i < kRecords; ++i) {
    primary->replicate(make_put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i), 48)), nullptr);
  }
  sched.run();
  EXPECT_EQ(secs[0]->applied_seq(), static_cast<std::uint64_t>(kRecords));
  EXPECT_EQ(secs[0]->store().size(), static_cast<std::size_t>(kRecords));
}

TEST_F(ReplicationTest, NoSecondariesCompletesImmediately) {
  build(0, ReplicationMode::kLogRelaxed);
  bool fired = false;
  primary->replicate(make_put("k", "v"), [&] { fired = true; });
  EXPECT_TRUE(fired);  // synchronous: nothing to wait for
}

TEST_F(ReplicationTest, UpdatesOverwriteOnReplica) {
  build(1, ReplicationMode::kLogRelaxed);
  primary->replicate(make_put("k", "v1"), nullptr);
  primary->replicate(make_put("k", "v2"), nullptr);
  sched.run();
  auto r = secs[0]->store().get("k", sched.now(), false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "v2");
  EXPECT_EQ(r.value().version, 2u);
}

TEST_F(ReplicationTest, ResetStreamSupportsNewPrimary) {
  build(1, ReplicationMode::kLogRelaxed);
  primary->replicate(make_put("old", "x"), nullptr);
  sched.run();
  ASSERT_EQ(secs[0]->applied_seq(), 1u);

  // A new primary (fresh engine, seq restarts at 1) adopts this secondary.
  auto owner2 = std::make_unique<sim::Actor>(sched, "new-primary");
  PrimaryConfig cfg;
  cfg.mode = ReplicationMode::kLogRelaxed;
  ReplicationPrimary fresh(*owner2, fabric, primary_node, cfg);
  fresh.add_secondary(*secs[0]);
  EXPECT_EQ(secs[0]->applied_seq(), 0u);  // stream reset

  proto::RepRecord rec;
  rec.op = proto::MsgType::kPut;
  rec.key = "new";
  rec.value = "y";
  fresh.replicate(std::move(rec), nullptr);
  sched.run();
  EXPECT_EQ(secs[0]->applied_seq(), 1u);
  // Old data survives (the store is the same replica), new data arrives.
  EXPECT_TRUE(secs[0]->store().get("old", sched.now(), false).ok());
  EXPECT_TRUE(secs[0]->store().get("new", sched.now(), false).ok());
}

}  // namespace
}  // namespace hydra::replication
