// Range-scan system tests (DESIGN.md §13): cluster-level cross-shard merge
// correctness, the one-sided leaf-read fast path and its message-path
// parity, kScan hardening against index-less shards, and the
// scan-mid-migration chaos family (scripted schedules x seeds plus a
// seeded sweep scaled by HYDRA_SCAN_RANDOM_RUNS).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chaos/scan_chaos.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra {
namespace {

int env_runs(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

std::string skey(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "sk-%06d", i);
  return buf;
}

db::ClusterOptions scan_options(bool leaf_reads = true) {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.replicas = 0;
  opts.enable_swat = false;
  opts.ordered_index = true;
  opts.client_template.scan_leaf_reads = leaf_reads;
  return opts;
}

// --------------------------------------------------------------- data path

TEST(ScanCluster, MergesSortedAcrossShards) {
  db::HydraCluster cluster(scan_options());
  const int n = 200;
  for (int i = 0; i < n; ++i) cluster.direct_load(skey(i), "v" + std::to_string(i));

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_EQ(cluster.scan(skey(0), n + 10, &out), Status::kOk);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].first, skey(i));
    EXPECT_EQ(out[static_cast<std::size_t>(i)].second, "v" + std::to_string(i));
  }
  // Keys really are spread: more than one shard contributed.
  std::map<ShardId, int> per_shard;
  for (int i = 0; i < n; ++i) ++per_shard[cluster.owner_of(skey(i))];
  EXPECT_GT(per_shard.size(), 1u);
}

TEST(ScanCluster, HonorsLimitAndStartKey) {
  db::HydraCluster cluster(scan_options());
  for (int i = 0; i < 100; ++i) cluster.direct_load(skey(i), "v");

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_EQ(cluster.scan(skey(40), 25, &out), Status::kOk);
  ASSERT_EQ(out.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].first, skey(40 + i));
  }
  // Start past the end: empty result, still kOk.
  out.clear();
  ASSERT_EQ(cluster.scan(skey(100), 10, &out), Status::kOk);
  EXPECT_TRUE(out.empty());
  // Mid-gap start resumes at the successor.
  out.clear();
  ASSERT_EQ(cluster.scan(skey(40) + "x", 3, &out), Status::kOk);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, skey(41));
}

TEST(ScanCluster, ScansSeeAckedWrites) {
  db::HydraCluster cluster(scan_options());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(cluster.put(skey(i), "w" + std::to_string(i)), Status::kOk);
  }
  ASSERT_EQ(cluster.remove(skey(25)), Status::kOk);
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_EQ(cluster.scan(skey(0), 100, &out), Status::kOk);
  ASSERT_EQ(out.size(), 49u);
  for (const auto& [k, v] : out) EXPECT_NE(k, skey(25));
}

TEST(ScanCluster, LeafReadsServeAndParityWithMessagePath) {
  // Same dataset scanned with and without the one-sided leaf fast path:
  // identical results, and the fast path actually fires when enabled.
  std::vector<std::pair<std::string, std::string>> with_leaf;
  std::vector<std::pair<std::string, std::string>> without_leaf;
  std::uint64_t leaf_reads = 0;
  for (const bool leaf : {true, false}) {
    db::HydraCluster cluster(scan_options(leaf));
    for (int i = 0; i < 300; ++i) cluster.direct_load(skey(i), "v" + std::to_string(i));
    // Repeated scans let continuations ride the advertised leaf hints.
    auto& out = leaf ? with_leaf : without_leaf;
    for (int r = 0; r < 4; ++r) {
      out.clear();
      ASSERT_EQ(cluster.scan(skey(0), 310, &out), Status::kOk);
    }
    std::uint64_t reads = 0;
    std::uint64_t fallbacks = 0;
    for (const auto* c : cluster.clients()) {
      reads += c->stats().scan_leaf_reads;
      fallbacks += c->stats().scan_leaf_fallbacks;
    }
    if (leaf) {
      leaf_reads = reads;
    } else {
      EXPECT_EQ(reads, 0u);
      EXPECT_EQ(fallbacks, 0u);
    }
  }
  EXPECT_GT(leaf_reads, 0u);
  EXPECT_EQ(with_leaf, without_leaf);
}

TEST(ScanCluster, IndexlessShardRejectsScan) {
  db::ClusterOptions opts = scan_options();
  opts.ordered_index = false;  // stores never allocate the index
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 10; ++i) cluster.direct_load(skey(i), "v");
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(cluster.scan(skey(0), 10, &out), Status::kInvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST(ScanCluster, ServerScanCountersAdvance) {
  db::HydraCluster cluster(scan_options());
  for (int i = 0; i < 100; ++i) cluster.direct_load(skey(i), "v");
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_EQ(cluster.scan(skey(0), 120, &out), Status::kOk);
  std::uint64_t scans = 0;
  std::uint64_t entries = 0;
  for (ShardId s = 0; s < static_cast<ShardId>(cluster.shard_count()); ++s) {
    scans += cluster.shard(s)->stats().scans;
    entries += cluster.shard(s)->stats().scan_entries;
  }
  EXPECT_GT(scans, 0u);
  EXPECT_GT(entries, 0u);  // leaf-read entries bypass the server counter
  std::uint64_t cursor_scans = 0;
  std::uint64_t client_entries = 0;
  for (const auto* c : cluster.clients()) {
    cursor_scans += c->stats().scans;
    client_entries += c->stats().scan_entries;
  }
  EXPECT_EQ(cursor_scans, 1u);
  EXPECT_GE(client_entries, 100u);  // message-path + leaf-read entries combined
}

// ------------------------------------------------------- chaos: migration

void expect_clean(const chaos::ScanRunReport& report, const std::string& label) {
  EXPECT_TRUE(report.passed()) << label << " violations:\n"
                               << [&] {
                                    std::string all;
                                    for (const auto& v : report.violations) {
                                      all += "  " + v + "\n";
                                    }
                                    return all + "history tail:\n" +
                                           report.history.substr(
                                               report.history.size() > 4000
                                                   ? report.history.size() - 4000
                                                   : 0);
                                  }();
  EXPECT_GT(report.puts_acked, 0u) << label;
  EXPECT_GT(report.scans_acked, 0u) << label;
}

TEST(ScanChaos, ScriptedFamilies) {
  for (const auto& schedule : chaos::ScanSchedule::scripted()) {
    for (const std::uint64_t seed : {11ULL, 29ULL}) {
      const auto report = chaos::ScanChaosRunner::run(schedule, seed);
      expect_clean(report, schedule.name + " seed=" + std::to_string(seed));
      if (HasFailure()) return;
    }
  }
}

TEST(ScanChaos, TornLeafReadsAreCaught) {
  // The torn-read family must actually exercise the fallback machinery:
  // garbled pages happen AND every scan still verifies.
  chaos::ScanSchedule schedule;
  for (const auto& s : chaos::ScanSchedule::scripted()) {
    if (s.name == "scan-torn-leaf-reads") schedule = s;
  }
  ASSERT_EQ(schedule.name, "scan-torn-leaf-reads");
  const auto report = chaos::ScanChaosRunner::run(schedule, 7);
  expect_clean(report, schedule.name);
  EXPECT_GT(report.torn_reads, 0u);
  EXPECT_GT(report.scan_leaf_fallbacks, 0u);
}

TEST(ScanChaos, MigrationRestartsCursors) {
  // Crossing a live expansion must reject stale continuation tokens (epoch
  // fence) and restart cursors rather than silently mis-merging.
  chaos::ScanSchedule schedule;
  for (const auto& s : chaos::ScanSchedule::scripted()) {
    if (s.name == "scan-add-shard-live") schedule = s;
  }
  ASSERT_EQ(schedule.name, "scan-add-shard-live");
  std::uint64_t restarts = 0;
  for (const std::uint64_t seed : {3ULL, 5ULL, 17ULL}) {
    const auto report = chaos::ScanChaosRunner::run(schedule, seed);
    expect_clean(report, schedule.name + " seed=" + std::to_string(seed));
    restarts += report.scan_restarts + report.scan_token_rejects;
  }
  EXPECT_GT(restarts, 0u);
}

TEST(ScanChaos, SeededRandomSweep) {
  const int runs = env_runs("HYDRA_SCAN_RANDOM_RUNS", 25);
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(r);
    const auto schedule = chaos::ScanSchedule::random(seed);
    const auto report = chaos::ScanChaosRunner::run(schedule, seed);
    EXPECT_TRUE(report.passed()) << schedule.name << " violations:\n" << [&] {
      std::string all;
      for (const auto& v : report.violations) all += "  " + v + "\n";
      return all;
    }();
    if (HasFailure()) return;
  }
}

TEST(ScanChaos, DeterministicHistory) {
  // Byte-identical history across two runs of the same (schedule, seed).
  for (const auto& schedule : chaos::ScanSchedule::scripted()) {
    const auto a = chaos::ScanChaosRunner::run(schedule, 21);
    const auto b = chaos::ScanChaosRunner::run(schedule, 21);
    ASSERT_EQ(a.history, b.history) << schedule.name;
  }
}

}  // namespace
}  // namespace hydra
