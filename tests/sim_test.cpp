// Unit tests for the discrete-event scheduler, actors and simulated mutex.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "sim/mutex.hpp"
#include "sim/scheduler.hpp"

namespace hydra::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Scheduler, TiesBreakInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(100, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, PastTimestampsClampToNow) {
  Scheduler s;
  Time fired = ~Time{0};
  s.at(100, [&] {
    s.at(50, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 100u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.after(5, chain);
  };
  s.after(5, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Scheduler, CancelAfterFireIsSafe) {
  Scheduler s;
  const EventId id = s.at(10, [] {});
  s.run();
  s.cancel(id);  // must not crash or corrupt
  bool fired = false;
  s.at(20, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, SlotReuseDoesNotResurrectCancelledEvents) {
  Scheduler s;
  const EventId first = s.at(10, [] { FAIL() << "cancelled event fired"; });
  s.cancel(first);
  // New events may reuse the slot; cancelling the stale id must not hit them.
  bool fired = false;
  s.at(5, [&] { fired = true; });
  s.cancel(first);  // stale handle, different generation
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  s.at(10, [&] { fired.push_back(s.now()); });
  s.at(20, [&] { fired.push_back(s.now()); });
  s.at(30, [&] { fired.push_back(s.now()); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(s.now(), 20u);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(5000);
  EXPECT_EQ(s.now(), 5000u);
}

TEST(Scheduler, PendingCountsLiveEventsOnly) {
  Scheduler s;
  const EventId a = s.at(10, [] {});
  s.at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto trace = [] {
    Scheduler s;
    std::vector<std::pair<Time, int>> t;
    for (int i = 0; i < 50; ++i) {
      s.at(static_cast<Time>((i * 37) % 100), [&t, &s, i] { t.emplace_back(s.now(), i); });
    }
    s.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

// ---------------------------------------------------------------- actor

TEST(Actor, ScheduledCallbackRunsWhileAlive) {
  Scheduler s;
  Actor a(s, "a");
  bool fired = false;
  a.schedule_after(10, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.name(), "a");
}

TEST(Actor, KillDropsPendingCallbacks) {
  Scheduler s;
  Actor a(s, "victim");
  bool fired = false;
  a.schedule_after(10, [&] { fired = true; });
  s.at(5, [&] { a.kill(); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(a.alive());
}

TEST(Actor, DestructionDropsPendingCallbacks) {
  Scheduler s;
  bool fired = false;
  {
    Actor a(s, "scoped");
    a.schedule_after(10, [&] { fired = true; });
  }
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Actor, GuardWrapsForeignCallbacks) {
  Scheduler s;
  Actor a(s, "guarded");
  bool fired = false;
  auto guarded = a.guard([&] { fired = true; });
  a.kill();
  s.at(1, guarded);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Actor, SelfReschedulingLoopStopsOnKill) {
  Scheduler s;
  Actor a(s, "looper");
  int ticks = 0;
  std::function<void()> loop = [&] {
    ++ticks;
    a.schedule_after(10, loop);
  };
  a.schedule_after(10, loop);
  s.at(55, [&] { a.kill(); });
  s.run();
  EXPECT_EQ(ticks, 5);  // t=10..50
}

// ---------------------------------------------------------------- mutex

TEST(SimMutex, UncontendedAcquireIsImmediate) {
  Scheduler s;
  SimMutex m(s);
  Time acquired = ~Time{0};
  s.at(100, [&] { m.lock([&] { acquired = s.now(); }); });
  s.run();
  EXPECT_EQ(acquired, 100u);
  EXPECT_TRUE(m.locked());
  EXPECT_EQ(m.contended_acquires(), 0u);
}

TEST(SimMutex, ContendedAcquiresQueueFifoWithHandoffCost) {
  Scheduler s;
  SimMutex m(s, /*handoff_cost=*/80);
  std::vector<int> order;
  std::vector<Time> times;
  auto worker = [&](int id, Duration hold) {
    m.lock([&, id, hold] {
      order.push_back(id);
      times.push_back(s.now());
      s.after(hold, [&] { m.unlock(); });
    });
  };
  s.at(0, [&] { worker(0, 1000); });
  s.at(1, [&] { worker(1, 1000); });
  s.at(2, [&] { worker(2, 1000); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times[1], 1000u + 80u);
  EXPECT_EQ(times[2], 1000u + 80u + 1000u + 80u);
  EXPECT_EQ(m.contended_acquires(), 2u);
  EXPECT_GT(m.total_wait(), 0u);
  EXPECT_FALSE(m.locked());
}

TEST(SimMutex, UnlockWithNoWaitersReleases) {
  Scheduler s;
  SimMutex m(s);
  s.at(0, [&] { m.lock([&] { m.unlock(); }); });
  s.run();
  EXPECT_FALSE(m.locked());
  Time second = 0;
  s.at(10, [&] { m.lock([&] { second = s.now(); }); });
  s.run();
  EXPECT_EQ(second, 10u);
}

TEST(SimMutex, SerializationThroughputMatchesHoldTime) {
  // N workers each holding the lock for H ns finish in ~N*(H+handoff).
  Scheduler s;
  SimMutex m(s, 50);
  constexpr int kWorkers = 20;
  constexpr Duration kHold = 500;
  int done = 0;
  for (int i = 0; i < kWorkers; ++i) {
    s.at(0, [&] {
      m.lock([&] { s.after(kHold, [&] { m.unlock(); ++done; }); });
    });
  }
  s.run();
  EXPECT_EQ(done, kWorkers);
  EXPECT_NEAR(static_cast<double>(s.now()), kWorkers * (500.0 + 50.0), 100.0);
}

}  // namespace
}  // namespace hydra::sim
