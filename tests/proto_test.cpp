// Tests for indicator-encapsulated framing and message codecs.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proto/frame.hpp"
#include "proto/messages.hpp"

namespace hydra::proto {
namespace {

std::vector<std::byte> to_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

// ---------------------------------------------------------------- frames

TEST(Frame, SizeArithmetic) {
  EXPECT_EQ(frame_size(0), 16u);
  EXPECT_EQ(frame_size(1), 24u);
  EXPECT_EQ(frame_size(8), 24u);
  EXPECT_EQ(frame_size(9), 32u);
  EXPECT_EQ(max_payload(16), 0u);
  EXPECT_EQ(max_payload(1024), 1008u);
}

TEST(Frame, EncodePollRoundTrip) {
  std::vector<std::byte> buf(256);
  const auto payload = to_bytes("hello frame");
  const std::size_t framed = encode_frame(buf, payload);
  EXPECT_EQ(framed, frame_size(payload.size()));

  const auto size = poll_frame(buf);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, payload.size());
  const auto got = frame_payload(buf);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
  EXPECT_EQ(frame_flags(buf), kFlagNone);
}

TEST(Frame, EmptyBufferIsNotAFrame) {
  std::vector<std::byte> buf(64);
  EXPECT_FALSE(poll_frame(buf).has_value());
}

TEST(Frame, HeadWithoutTailIsIncomplete) {
  // Simulates polling mid-delivery: head word landed, tail not yet.
  std::vector<std::byte> buf(64);
  const auto payload = to_bytes("partial");
  encode_frame(buf, payload);
  // Knock out the tail indicator.
  std::memset(buf.data() + 8 + align8_sz(payload.size()), 0, 8);
  EXPECT_FALSE(poll_frame(buf).has_value());
}

TEST(Frame, TailWithoutHeadIsIncomplete) {
  std::vector<std::byte> buf(64);
  const auto payload = to_bytes("partial");
  encode_frame(buf, payload);
  std::memset(buf.data(), 0, 8);  // knock out the head
  EXPECT_FALSE(poll_frame(buf).has_value());
}

TEST(Frame, OversizedLengthFieldRejected) {
  std::vector<std::byte> buf(32);
  // Hand-craft a head claiming a payload larger than the buffer.
  const std::uint64_t head = (static_cast<std::uint64_t>(kHeadMagic) << 48) | 1000u;
  std::memcpy(buf.data(), &head, 8);
  EXPECT_FALSE(poll_frame(buf).has_value());
}

TEST(Frame, ClearMakesBufferReusable) {
  std::vector<std::byte> buf(128);
  encode_frame(buf, to_bytes("first"));
  ASSERT_TRUE(poll_frame(buf).has_value());
  clear_frame(buf);
  EXPECT_FALSE(poll_frame(buf).has_value());
  encode_frame(buf, to_bytes("second message"));
  ASSERT_TRUE(poll_frame(buf).has_value());
  const auto got = frame_payload(buf);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(got.data()), got.size()),
            "second message");
}

TEST(Frame, FlagsCarryThrough) {
  std::vector<std::byte> buf(64);
  encode_frame(buf, to_bytes("x"), kFlagAckRequest);
  ASSERT_TRUE(poll_frame(buf).has_value());
  EXPECT_EQ(frame_flags(buf) & kFlagAckRequest, kFlagAckRequest);
}

TEST(Frame, ZeroPayloadFrameWorks) {
  std::vector<std::byte> buf(32);
  encode_frame(buf, {}, kFlagAckRequest);
  const auto size = poll_frame(buf);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 0u);
}

// ---------------------------------------------------------------- probing

TEST(Probe, DistinguishesEmptyPartialReady) {
  std::vector<std::byte> buf(64);
  EXPECT_EQ(probe_frame(buf), FrameState::kEmpty);

  const auto payload = to_bytes("probe me");
  encode_frame(buf, payload);
  EXPECT_EQ(probe_frame(buf), FrameState::kReady);

  // Head landed, tail still zero: mid-delivery.
  std::memset(buf.data() + 8 + align8_sz(payload.size()), 0, 8);
  EXPECT_EQ(probe_frame(buf), FrameState::kPartial);
}

TEST(Probe, GarbageMagicIsMalformed) {
  std::vector<std::byte> buf(64, std::byte{0xEE});
  EXPECT_EQ(probe_frame(buf), FrameState::kMalformed);
}

TEST(Probe, LyingSizeFieldIsMalformed) {
  std::vector<std::byte> buf(32);
  const std::uint64_t head = (static_cast<std::uint64_t>(kHeadMagic) << 48) | 100000u;
  std::memcpy(buf.data(), &head, 8);
  EXPECT_EQ(probe_frame(buf), FrameState::kMalformed);
}

TEST(Probe, OverrunTailIsMalformed) {
  // Valid head + size, but the tail word holds junk instead of the
  // indicator or zero: something scribbled past the payload.
  std::vector<std::byte> buf(64);
  const auto payload = to_bytes("x");
  encode_frame(buf, payload);
  const std::uint64_t junk = 0xDEADBEEFDEADBEEFull;
  std::memcpy(buf.data() + 8 + align8_sz(payload.size()), &junk, 8);
  EXPECT_EQ(probe_frame(buf), FrameState::kMalformed);
}

TEST(Probe, TooSmallBufferIsMalformed) {
  std::vector<std::byte> buf(8);
  EXPECT_EQ(probe_frame(buf), FrameState::kMalformed);
}

TEST(Frame, ClearClampsALyingSizeField) {
  // clear_frame on a head claiming more bytes than the buffer holds must
  // stay inside the buffer (would be a heap smash otherwise).
  std::vector<std::byte> buf(32, std::byte{0x55});
  const std::uint64_t head = (static_cast<std::uint64_t>(kHeadMagic) << 48) | 100000u;
  std::memcpy(buf.data(), &head, 8);
  clear_frame(buf);
  for (const std::byte b : buf) EXPECT_EQ(b, std::byte{0});
  std::vector<std::byte> tiny(4, std::byte{0x55});
  clear_frame(tiny);  // smaller than a head word: must be a no-op
  EXPECT_EQ(tiny[0], std::byte{0x55});
}

TEST(Frame, RingSlotArithmetic) {
  EXPECT_EQ(ring_slot_offset(0, 4096), 0u);
  EXPECT_EQ(ring_slot_offset(3, 4096), 3u * 4096u);
  EXPECT_EQ(ring_slot_of(0, 4096), 0u);
  EXPECT_EQ(ring_slot_of(3 * 4096 + 17, 4096), 3u);
}

// ---------------------------------------------------------------- messages

TEST(Messages, RequestRoundTrip) {
  Request req;
  req.type = MsgType::kPut;
  req.req_id = 12345;
  req.client = 7;
  req.key = "user000000000042";
  req.value = std::string(32, 'v');
  const auto payload = encode_request(req);
  const auto back = decode_request(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, req.type);
  EXPECT_EQ(back->req_id, req.req_id);
  EXPECT_EQ(back->client, req.client);
  EXPECT_EQ(back->key, req.key);
  EXPECT_EQ(back->value, req.value);
}

TEST(Messages, ResponseRoundTripWithRemotePtr) {
  Response resp;
  resp.req_id = 99;
  resp.status = Status::kOk;
  resp.version = 3;
  resp.remote_ptr.rkey = 11;
  resp.remote_ptr.offset = 0x123456;
  resp.remote_ptr.total_len = 88;
  resp.remote_ptr.lease_expiry = 5'000'000'000ULL;
  resp.remote_ptr.version = 3;
  resp.remote_ptr.shard = 2;
  resp.value = "the-value";
  const auto payload = encode_response(resp);
  const auto back = decode_response(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, Status::kOk);
  EXPECT_EQ(back->remote_ptr.offset, 0x123456u);
  EXPECT_EQ(back->remote_ptr.total_len, 88u);
  EXPECT_TRUE(back->remote_ptr.valid());
  EXPECT_EQ(back->value, "the-value");
}

TEST(Messages, InvalidRemotePtrIsNotValid) {
  RemotePtr ptr;
  EXPECT_FALSE(ptr.valid());
}

TEST(Messages, ResponseRoundTripWithReplicaAdvertisement) {
  Response resp;
  resp.req_id = 7;
  resp.status = Status::kOk;
  resp.remote_ptr.rkey = 11;
  resp.remote_ptr.total_len = 64;
  resp.value = "v";
  for (std::uint64_t i = 0; i < 3; ++i) {
    ReplicaPtr rep;
    rep.node = 10 + i;
    rep.rkey = 100 + static_cast<std::uint32_t>(i);
    rep.offset = 0x1000 * (i + 1);
    rep.total_len = 64;
    resp.replicas.push_back(rep);
  }
  const auto back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->replicas.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back->replicas[i].node, 10 + i);
    EXPECT_EQ(back->replicas[i].rkey, 100 + i);
    EXPECT_EQ(back->replicas[i].offset, 0x1000 * (i + 1));
    EXPECT_EQ(back->replicas[i].total_len, 64u);
    EXPECT_TRUE(back->replicas[i].valid());
  }
}

TEST(Messages, EmptyReplicaSetKeepsLegacyResponseLayout) {
  // The advertisement block is trailing-optional: a response with no
  // promoted replicas must encode byte-for-byte like the pre-promotion
  // protocol, so promotion-off clusters produce identical histories.
  Response resp;
  resp.req_id = 3;
  resp.status = Status::kOk;
  resp.value = "legacy";
  const auto without = encode_response(resp);
  ReplicaPtr rep;
  rep.node = 1;
  rep.rkey = 2;
  rep.total_len = 32;
  resp.replicas.push_back(rep);
  const auto with = encode_response(resp);
  EXPECT_GT(with.size(), without.size());
  // Prefix-compatible: the legacy fields encode first and unchanged.
  EXPECT_TRUE(std::equal(without.begin(), without.end(), with.begin()));
  const auto back = decode_response(without);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->replicas.empty());
}

TEST(Messages, ReplicaBlockRejectsBadCounts) {
  Response resp;
  resp.req_id = 5;
  resp.status = Status::kOk;
  ReplicaPtr rep;
  rep.node = 1;
  rep.rkey = 2;
  rep.total_len = 16;
  resp.replicas.push_back(rep);
  auto payload = encode_response(resp);
  // The count byte sits right after the value string; locate it from the
  // back: count (1) + one ReplicaPtr record (4 + 4 + 8 + 4).
  const std::size_t count_at = payload.size() - 1 - 20;
  ASSERT_EQ(std::to_integer<std::uint8_t>(payload[count_at]), 1u);
  auto zero = payload;
  zero[count_at] = std::byte{0};  // present-but-empty block is malformed
  EXPECT_FALSE(decode_response(zero).has_value());
  auto over = payload;
  over[count_at] = std::byte{kMaxReplicaPtrs + 1};  // count > records present
  EXPECT_FALSE(decode_response(over).has_value());
  // A truncated replica record must not decode either.
  auto cut = payload;
  cut.resize(payload.size() - 3);
  EXPECT_FALSE(decode_response(cut).has_value());
}

TEST(Messages, EncoderCapsReplicaFanout) {
  Response resp;
  resp.req_id = 9;
  resp.status = Status::kOk;
  for (std::uint64_t i = 0; i < kMaxReplicaPtrs + 3; ++i) {
    ReplicaPtr rep;
    rep.node = i;
    rep.rkey = 1;
    rep.total_len = 8;
    resp.replicas.push_back(rep);
  }
  const auto back = decode_response(encode_response(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->replicas.size(), kMaxReplicaPtrs);
}

TEST(Messages, RepRecordRoundTrip) {
  RepRecord rec;
  rec.seq = 777;
  rec.op = MsgType::kRemove;
  rec.op_time = 123456789;
  rec.key = "k";
  rec.value = "";
  const auto payload = encode_rep_record(rec);
  const auto back = decode_rep_record(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 777u);
  EXPECT_EQ(back->op, MsgType::kRemove);
  EXPECT_EQ(back->op_time, 123456789u);
  EXPECT_EQ(back->key, "k");
}

TEST(Messages, RepAckRoundTrip) {
  RepAck ack{42, 43};
  const auto back = decode_rep_ack(encode_rep_ack(ack));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->acked_seq, 42u);
  EXPECT_EQ(back->first_failed_seq, 43u);
}

TEST(Messages, TruncatedPayloadsRejected) {
  Request req;
  req.key = "some-key";
  req.value = "some-value";
  auto payload = encode_request(req);
  for (std::size_t cut = 0; cut < payload.size(); cut += 3) {
    auto truncated = payload;
    truncated.resize(cut);
    EXPECT_FALSE(decode_request(truncated).has_value()) << "cut=" << cut;
  }
  // Trailing garbage is rejected too (exhaustion check).
  payload.push_back(std::byte{1});
  EXPECT_FALSE(decode_request(payload).has_value());
}

TEST(Messages, LengthFieldLyingAboutSizeRejected) {
  Request req;
  req.key = "abcdefgh";
  auto payload = encode_request(req);
  // Corrupt the key length to exceed the buffer.
  const std::uint32_t huge = 1 << 30;
  std::memcpy(payload.data() + 1 + 8 + 4, &huge, 4);
  EXPECT_FALSE(decode_request(payload).has_value());
}

// --- ordered range scans (DESIGN.md §13) ------------------------------------

TEST(Messages, ScanReqRoundTrip) {
  for (const std::uint8_t flags : {std::uint8_t{0}, kScanFlagExclusive}) {
    ScanReq req;
    req.epoch = 0xFEEDFACECAFEBEEFULL;
    req.limit = 321;
    req.flags = flags;
    const auto back = decode_scan_req(encode_scan_req(req));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->epoch, req.epoch);
    EXPECT_EQ(back->limit, 321u);
    EXPECT_EQ(back->flags, flags);
  }
}

TEST(Messages, ScanReqHardened) {
  ScanReq req;
  req.epoch = 7;
  req.limit = 5;
  req.flags = kScanFlagExclusive;
  auto payload = encode_scan_req(req);
  // Truncation at every boundary.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    auto truncated = payload;
    truncated.resize(cut);
    EXPECT_FALSE(decode_scan_req(truncated).has_value()) << "cut=" << cut;
  }
  // Trailing garbage (exhaustion check).
  auto padded = payload;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_scan_req(padded).has_value());
  // Undefined flag bits: a newer/corrupt client must be rejected, not
  // silently half-understood.
  auto flagged = payload;
  flagged[8 + 4] = std::byte{0x80};
  EXPECT_FALSE(decode_scan_req(flagged).has_value());
}

ScanResp sample_scan_resp(bool with_hint) {
  ScanResp resp;
  resp.epoch = 12;
  resp.done = false;
  resp.entries = {{"a-key", "a-value"}, {"b-key", ""}, {"c", "ccc"}};
  if (with_hint) {
    resp.hint.node = 3;
    resp.hint.rkey = 77;
    resp.hint.offset = 8192;
    resp.hint.len = 4096;
    resp.hint.leaf_id = 19;
    resp.hint.leaf_version = 6;
  }
  return resp;
}

TEST(Messages, ScanRespRoundTrip) {
  for (const bool with_hint : {false, true}) {
    const ScanResp resp = sample_scan_resp(with_hint);
    const auto back = decode_scan_resp(encode_scan_resp(resp));
    ASSERT_TRUE(back.has_value()) << "hint=" << with_hint;
    EXPECT_EQ(back->epoch, 12u);
    EXPECT_FALSE(back->done);
    ASSERT_EQ(back->entries.size(), 3u);
    EXPECT_EQ(back->entries[0].first, "a-key");
    EXPECT_EQ(back->entries[0].second, "a-value");
    EXPECT_EQ(back->entries[1].second, "");
    EXPECT_EQ(back->hint.valid(), with_hint);
    if (with_hint) {
      EXPECT_EQ(back->hint.node, 3u);
      EXPECT_EQ(back->hint.rkey, 77u);
      EXPECT_EQ(back->hint.offset, 8192u);
      EXPECT_EQ(back->hint.len, 4096u);
      EXPECT_EQ(back->hint.leaf_id, 19u);
      EXPECT_EQ(back->hint.leaf_version, 6u);
    }
  }
}

TEST(Messages, ScanRespEmptyDoneRoundTrip) {
  ScanResp resp;
  resp.epoch = 1;
  resp.done = true;
  const auto back = decode_scan_resp(encode_scan_resp(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->done);
  EXPECT_TRUE(back->entries.empty());
  EXPECT_FALSE(back->hint.valid());
}

TEST(Messages, ScanRespTruncationRejected) {
  const std::size_t hint_off = encode_scan_resp(sample_scan_resp(false)).size();
  for (const bool with_hint : {false, true}) {
    const auto payload = encode_scan_resp(sample_scan_resp(with_hint));
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      auto truncated = payload;
      truncated.resize(cut);
      if (with_hint && cut == hint_off) {
        // Cutting exactly the optional trailing hint block yields a valid
        // hint-less batch -- indistinguishable by design; the frame-level
        // checksum is what guards against real truncation there.
        const auto back = decode_scan_resp(truncated);
        ASSERT_TRUE(back.has_value());
        EXPECT_FALSE(back->hint.valid());
        continue;
      }
      EXPECT_FALSE(decode_scan_resp(truncated).has_value())
          << "hint=" << with_hint << " cut=" << cut;
    }
    auto padded = payload;
    padded.push_back(std::byte{2});
    EXPECT_FALSE(decode_scan_resp(padded).has_value()) << "hint=" << with_hint;
  }
}

TEST(Messages, ScanRespOpCountCorruptionRejected) {
  auto payload = encode_scan_resp(sample_scan_resp(false));
  // Entry count lives after epoch (8) + done (1). A count the frame cannot
  // carry must be rejected before any allocation is sized from it.
  const std::uint32_t huge = 0x40000000;
  std::memcpy(payload.data() + 9, &huge, 4);
  EXPECT_FALSE(decode_scan_resp(payload).has_value());
  // Off-by-small lies are caught by the walk, not just the bound check.
  const std::uint32_t plus_one = 4;
  std::memcpy(payload.data() + 9, &plus_one, 4);
  EXPECT_FALSE(decode_scan_resp(payload).has_value());
}

TEST(Messages, ScanRespDoneCorruptionRejected) {
  auto payload = encode_scan_resp(sample_scan_resp(false));
  payload[8] = std::byte{2};  // done must be exactly 0 or 1
  EXPECT_FALSE(decode_scan_resp(payload).has_value());
}

TEST(Messages, ScanRespHintCorruptionRejected) {
  const ScanResp resp = sample_scan_resp(true);
  auto payload = encode_scan_resp(resp);
  const std::size_t hint_off = encode_scan_resp(sample_scan_resp(false)).size();
  // Presence byte must be exactly 1.
  for (const std::uint8_t presence : {std::uint8_t{0}, std::uint8_t{2}}) {
    auto forged = payload;
    forged[hint_off] = std::byte{presence};
    EXPECT_FALSE(decode_scan_resp(forged).has_value())
        << "presence=" << int(presence);
  }
  // A structurally complete hint that is semantically invalid (rkey == 0)
  // must be rejected too -- clients never see a non-actionable hint.
  auto forged = payload;
  const std::uint32_t zero = 0;
  std::memcpy(forged.data() + hint_off + 1 + 4, &zero, 4);  // rkey
  EXPECT_FALSE(decode_scan_resp(forged).has_value());
}

}  // namespace
}  // namespace hydra::proto
