// Tests for the application substrates: mini-HDFS, the MapReduce cache
// layer, the G2 engine driver and CDR processing.
#include <gtest/gtest.h>

#include "apps/cdr.hpp"
#include "apps/g2.hpp"
#include "apps/hdfs_lite.hpp"
#include "apps/mapreduce.hpp"

namespace hydra::apps {
namespace {

// ---------------------------------------------------------------- hdfs

TEST(HdfsLite, BlockReadDeliversAfterTcpAndServeCosts) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId dn = fabric.add_node("datanode").id();
  const NodeId reader = fabric.add_node("reader").id();
  HdfsLite hdfs(sched, fabric, HdfsConfig{dn});
  hdfs.put_block(1, 4 << 20);
  EXPECT_TRUE(hdfs.has_block(1));

  Time done = 0;
  std::uint32_t got_bytes = 0;
  hdfs.read_block(reader, 1, [&](std::uint32_t bytes) {
    done = sched.now();
    got_bytes = bytes;
  });
  sched.run();
  EXPECT_EQ(got_bytes, 4u << 20);
  // At least: request one way + serve CPU + response wire time.
  const auto& cm = fabric.cost();
  EXPECT_GE(done, cm.tcp_latency + cm.tcp_wire_time(4 << 20));
  EXPECT_EQ(hdfs.reads_served(), 1u);
}

TEST(HdfsLite, ConcurrentReadersSerializeOnDatanodeCpu) {
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId dn = fabric.add_node("datanode").id();
  const NodeId r1 = fabric.add_node("r1").id();
  const NodeId r2 = fabric.add_node("r2").id();
  HdfsLite hdfs(sched, fabric, HdfsConfig{dn});
  hdfs.put_block(1, 1 << 20);
  hdfs.put_block(2, 1 << 20);

  Time t1 = 0, t2 = 0;
  hdfs.read_block(r1, 1, [&](std::uint32_t) { t1 = sched.now(); });
  hdfs.read_block(r2, 2, [&](std::uint32_t) { t2 = sched.now(); });
  sched.run();
  EXPECT_GT(t2, t1);  // second reader waited behind the first's serve CPU
}

// ---------------------------------------------------------------- mapreduce

db::ClusterOptions cache_cluster_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 4;
  opts.client_nodes = 2;
  opts.clients_per_node = 4;
  opts.enable_swat = false;
  // 4 MB chunks need large arenas and message slots.
  opts.shard_template.store.arena_bytes = 512ull << 20;
  opts.shard_template.msg_slot_bytes = 5 << 20;
  opts.shard_template.max_connections = 16;
  opts.client_template.resp_slot_bytes = 5 << 20;
  opts.client_template.max_shard_connections = 8;
  return opts;
}

TEST(MapReduce, CacheLayerBeatsHdfsForIoBoundJobs) {
  JobSpec job{"TestDFSIO", 4, 2, 4u << 20, 0.0, 100 * kMicrosecond, 1};

  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId dn = fabric.add_node("datanode").id();
  std::vector<NodeId> task_nodes{fabric.add_node("w1").id(), fabric.add_node("w2").id()};
  HdfsLite hdfs(sched, fabric, HdfsConfig{dn});
  load_blocks_into_hdfs(hdfs, job);
  const Duration hdfs_time = run_job_on_hdfs(sched, hdfs, task_nodes, job);

  db::HydraCluster cluster(cache_cluster_options());
  load_blocks_into_hydradb(cluster, job);
  const Duration hydra_time = run_job_on_hydradb(cluster, job);

  ASSERT_GT(hdfs_time, 0u);
  ASSERT_GT(hydra_time, 0u);
  EXPECT_GT(static_cast<double>(hdfs_time) / static_cast<double>(hydra_time), 2.0)
      << "I/O-bound jobs should speed up severalfold on the cache layer";
}

TEST(MapReduce, ComputeBoundJobsGainLess) {
  JobSpec io_job{"io", 2, 2, 2u << 20, 0.0, 50 * kMicrosecond, 1};
  JobSpec cpu_job{"cpu", 2, 2, 2u << 20, 0.6, 50 * kMicrosecond, 1};

  auto speedup = [&](const JobSpec& job) {
    sim::Scheduler sched;
    fabric::Fabric fabric{sched};
    const NodeId dn = fabric.add_node("datanode").id();
    std::vector<NodeId> nodes{fabric.add_node("w").id()};
    HdfsLite hdfs(sched, fabric, HdfsConfig{dn});
    load_blocks_into_hdfs(hdfs, job);
    const Duration hdfs_time = run_job_on_hdfs(sched, hdfs, nodes, job);

    db::HydraCluster cluster(cache_cluster_options());
    load_blocks_into_hydradb(cluster, job);
    const Duration hydra_time = run_job_on_hydradb(cluster, job);
    return static_cast<double>(hdfs_time) / static_cast<double>(hydra_time);
  };

  const double io_speedup = speedup(io_job);
  const double cpu_speedup = speedup(cpu_job);
  EXPECT_GT(io_speedup, cpu_speedup)
      << "Amdahl: the cache layer helps I/O-bound jobs more";
  EXPECT_GT(cpu_speedup, 1.0);
}

TEST(MapReduce, PaperJobMixIsWellFormed) {
  const auto jobs = paper_job_mix();
  ASSERT_GE(jobs.size(), 6u);
  for (const auto& job : jobs) {
    EXPECT_FALSE(job.name.empty());
    EXPECT_GT(job.tasks, 0);
    EXPECT_GT(job.block_bytes, 0u);
  }
}

// ---------------------------------------------------------------- g2

db::ClusterOptions g2_cluster_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 4;
  opts.client_nodes = 2;
  opts.clients_per_node = 8;
  opts.enable_swat = false;
  opts.shard_template.store.arena_bytes = 64 << 20;
  return opts;
}

TEST(G2, HydraDbSustainsHigherObservationThroughput) {
  G2Config cfg;
  cfg.engines = 8;
  cfg.observations_per_engine = 100;
  cfg.entity_count = 2000;

  sim::Scheduler db_sched;
  fabric::Fabric db_fabric{db_sched};
  const NodeId db_node = db_fabric.add_node("db").id();
  std::vector<NodeId> engine_nodes{db_fabric.add_node("e1").id(), db_fabric.add_node("e2").id()};
  InMemoryDbBackend db_backend(db_sched, db_fabric, db_node, engine_nodes);
  load_entities(db_backend, cfg);
  const auto db_result = run_g2(db_sched, db_backend, cfg);

  db::HydraCluster cluster(g2_cluster_options());
  HydraDbBackend hydra_backend(cluster);
  load_entities(hydra_backend, cfg);
  const auto hydra_result = run_g2(cluster.scheduler(), hydra_backend, cfg);

  EXPECT_GT(hydra_result.observations_per_sec, db_result.observations_per_sec * 3.0)
      << "HydraDB should deliver several times the in-memory DB's throughput";
}

TEST(G2, InMemoryDbSaturatesWithMoreEngines) {
  auto throughput_with = [](int engines) {
    G2Config cfg;
    cfg.engines = engines;
    cfg.observations_per_engine = 60;
    cfg.entity_count = 1000;
    sim::Scheduler sched;
    fabric::Fabric fabric{sched};
    const NodeId db_node = fabric.add_node("db").id();
    std::vector<NodeId> nodes{fabric.add_node("e").id()};
    InMemoryDbBackend backend(sched, fabric, db_node, nodes);
    load_entities(backend, cfg);
    return run_g2(sched, backend, cfg).observations_per_sec;
  };
  const double t4 = throughput_with(4);
  const double t16 = throughput_with(16);
  // The lock manager caps it: 4x engines must give far less than 4x.
  EXPECT_LT(t16, t4 * 2.0);
}

// ---------------------------------------------------------------- cdr

TEST(Cdr, MeetsThroughputAndLatencyEnvelope) {
  db::ClusterOptions opts = g2_cluster_options();
  db::HydraCluster cluster(opts);
  CdrConfig cfg;
  cfg.processing_elements = 8;
  cfg.records_per_pe = 100;
  cfg.subscriber_count = 5000;
  load_subscribers(cluster, cfg);
  const auto result = run_cdr(cluster, cfg);

  EXPECT_EQ(result.records, 800u);
  EXPECT_GT(result.accesses_per_sec, 100'000.0);
  // Section 2.3's requirement: latency at hundreds of microseconds or less.
  EXPECT_LT(result.avg_record_latency_us, 200.0);
  EXPECT_LT(result.p99_record_latency, 500 * kMicrosecond);
}

}  // namespace
}  // namespace hydra::apps
