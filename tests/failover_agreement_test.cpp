// Tests for the fast-failover plane (DESIGN.md §14): RDMA permission
// revocation as the fencing primitive, missed-pulse suspicion, one-sided CAS
// ballot agreement, the microsecond crash-to-promotion gap, and the chaos
// family that hammers every fault point of the round. Plus the failover-path
// bugfix regressions this PR ships: revoked-rkey retransmits settling strict
// waiters, fenced-rkey pointer invalidation on fast epoch advance, and the
// legacy/fast double-promotion guard.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "chaos/failover_chaos.hpp"
#include "fabric/fabric.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"
#include "replication/primary.hpp"
#include "replication/secondary.hpp"
#include "sim/scheduler.hpp"

namespace hydra {
namespace {

using chaos::FailoverChaosRunner;
using chaos::FailoverReport;
using chaos::FailoverSchedule;

// ------------------------------------------------------------- rig helpers

/// Standalone replication rig (no cluster): one primary, N secondaries.
struct Rig {
  void build(int secondaries, replication::ReplicationMode mode) {
    primary_node = fabric.add_node("primary").id();
    owner = std::make_unique<sim::Actor>(sched, "primary-shard");
    replication::PrimaryConfig cfg;
    cfg.mode = mode;
    primary = std::make_unique<replication::ReplicationPrimary>(*owner, fabric,
                                                                primary_node, cfg);
    for (int i = 0; i < secondaries; ++i) {
      const NodeId n = fabric.add_node("secondary-" + std::to_string(i)).id();
      replication::SecondaryConfig scfg;
      scfg.primary_shard = 0;
      scfg.store.arena_bytes = 8 << 20;
      secs.push_back(std::make_unique<replication::SecondaryShard>(sched, fabric, n, scfg));
      primary->add_secondary(*secs.back());
    }
  }

  proto::RepRecord make_put(const std::string& key, const std::string& value) {
    proto::RepRecord rec;
    rec.op = proto::MsgType::kPut;
    rec.op_time = sched.now();
    rec.key = key;
    rec.value = value;
    return rec;
  }

  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  NodeId primary_node = 0;
  std::unique_ptr<sim::Actor> owner;
  std::unique_ptr<replication::ReplicationPrimary> primary;
  std::vector<std::unique_ptr<replication::SecondaryShard>> secs;
};

db::ClusterOptions fast_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = 2;
  opts.enable_swat = true;
  opts.fast_failover = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  return opts;
}

std::string describe(const FailoverReport& r) {
  std::string out;
  for (const auto& v : r.violations) out += "  " + v + "\n";
  out += "--- history ---\n" + r.history;
  return out;
}

const FailoverSchedule& scripted_by_name(const std::string& name) {
  static const auto all = FailoverSchedule::scripted();
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no scripted failover schedule named " << name;
  return all.front();
}

// ------------------------------------------------ fabric revocation verbs

TEST(RevocationVerb, RevokeFailsInFlightAndFutureWrites) {
  Rig rig;
  rig.build(1, replication::ReplicationMode::kLogRelaxed);
  rig.primary->replicate(rig.make_put("k0", "v0"), nullptr);
  rig.sched.run();
  ASSERT_EQ(rig.secs[0]->applied_records(), 1u);

  bool confirmed = false;
  rig.fabric.revoke_rkey(rig.secs[0]->node(), rig.secs[0]->ring_mr()->rkey(),
                         3 * kMicrosecond, [&](bool ok) { confirmed = ok; });
  rig.sched.run();
  EXPECT_TRUE(confirmed);
  EXPECT_EQ(rig.fabric.stats().rkey_revocations, 1u);
  // Revoking an already-revoked region is idempotent and still confirms.
  bool again = false;
  rig.fabric.revoke_rkey(rig.secs[0]->node(), rig.secs[0]->ring_mr()->rkey(),
                         3 * kMicrosecond, [&](bool ok) { again = ok; });
  rig.sched.run();
  EXPECT_TRUE(again);

  // An unknown rkey cannot be confirmed.
  bool unknown_ok = true;
  rig.fabric.revoke_rkey(rig.secs[0]->node(), 0xdeadu, 3 * kMicrosecond,
                         [&](bool ok) { unknown_ok = ok; });
  rig.sched.run();
  EXPECT_FALSE(unknown_ok);
}

TEST(RevocationVerb, ReregisterGrantsFreshRkeyAndKeepsOldDead) {
  Rig rig;
  rig.build(1, replication::ReplicationMode::kLogRelaxed);
  fabric::MemoryRegion* old_mr = rig.secs[0]->ring_mr();
  const std::uint32_t old_rkey = old_mr->rkey();

  rig.fabric.revoke_rkey(rig.secs[0]->node(), old_rkey, kMicrosecond, nullptr);
  rig.sched.run();
  fabric::MemoryRegion* fresh = rig.fabric.reregister_mr(rig.secs[0]->node(), old_mr);
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh->rkey(), old_rkey);
  EXPECT_EQ(fresh->length(), old_mr->length());
  EXPECT_EQ(rig.fabric.stats().rkey_reregistrations, 1u);
}

// --------------------------- bugfix 1: revoked-rkey retransmit regression
//
// Bug: a probe/record retransmit landing after a replica revoked the
// primary's rkey retried the write until the retransmit budget quarantined
// the link -- seconds of virtual time with strict waiters pinned. A
// kProtectionError from a *live* replica is a fence verdict: it must settle
// the waiters immediately (and never count as a wire retry).
TEST(FastFailoverRegression, RevokedRingSettlesStrictWaitersWithoutRetryStorm) {
  Rig rig;
  rig.build(1, replication::ReplicationMode::kStrictAck);
  bool warm = false;
  rig.primary->replicate(rig.make_put("k0", "v0"), [&] { warm = true; });
  rig.sched.run();
  ASSERT_TRUE(warm);

  // The replica fences us (as the failover plane would mid-round).
  rig.fabric.revoke_rkey(rig.secs[0]->node(), rig.secs[0]->ring_mr()->rkey(),
                         3 * kMicrosecond, nullptr);
  rig.sched.run();

  const std::uint64_t retries_before = rig.primary->write_retries();
  bool settled = false;
  rig.primary->replicate(rig.make_put("k1", "v1"), [&] { settled = true; });
  rig.sched.run();

  // The strict waiter fired (no wedge), without a single wire retry -- the
  // permission error is terminal, not transient.
  EXPECT_TRUE(settled);
  EXPECT_EQ(rig.primary->write_retries(), retries_before);
  EXPECT_EQ(rig.primary->fence_errors(), 1u);
  EXPECT_EQ(rig.primary->quarantined(), 1u);
}

TEST(FastFailoverRegression, RevokedLinkQuarantinesWhileSurvivorKeepsStream) {
  Rig rig;
  rig.build(2, replication::ReplicationMode::kStrictAck);
  rig.primary->replicate(rig.make_put("k0", "v0"), nullptr);
  rig.sched.run();

  rig.fabric.revoke_rkey(rig.secs[0]->node(), rig.secs[0]->ring_mr()->rkey(),
                         3 * kMicrosecond, nullptr);
  rig.sched.run();

  bool settled = false;
  rig.primary->replicate(rig.make_put("k1", "v1"), [&] { settled = true; });
  rig.sched.run();
  EXPECT_TRUE(settled);
  EXPECT_EQ(rig.primary->quarantined(), 1u);
  // The survivor's stream kept flowing past the fenced link.
  EXPECT_EQ(rig.secs[1]->applied_records(), 2u);
  EXPECT_EQ(rig.secs[0]->applied_records(), 1u);
}

// ------------------------------------------------------ suspicion + pulses

TEST(FastFailoverAgreement, PulsesKeepHealthyReplicasUnsuspicious) {
  obs::Plane plane;
  auto opts = fast_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  // Many pulse deadlines' worth of healthy silence on the data path.
  cluster.run_for(20 * kMillisecond);

  EXPECT_EQ(cluster.failovers(), 0u);
  const auto q = plane.query();
  EXPECT_EQ(q.count(obs::TraceKind::kSuspicionRaised), 0u);
  EXPECT_EQ(q.count(obs::TraceKind::kRkeyRevoked), 0u);
}

TEST(FastFailoverAgreement, CrashPromotesWithinMillisecond) {
  obs::Plane plane;
  auto opts = fast_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(cluster.put("k-" + std::to_string(i), "v-" + std::to_string(i)),
              Status::kOk);
  }
  cluster.run_for(10 * kMillisecond);

  const Time crashed_at = cluster.scheduler().now();
  cluster.crash_primary(0);
  cluster.run_for(50 * kMillisecond);  // milliseconds, not seconds

  ASSERT_EQ(cluster.failovers(), 1u);
  ASSERT_NE(cluster.shard(0), nullptr);
  EXPECT_TRUE(cluster.shard(0)->alive());

  const auto q = plane.query();
  const auto done = q.first(obs::TraceKind::kPromotionDone, 0);
  ASSERT_TRUE(done.has_value());
  const Duration gap = done->at - crashed_at;
  EXPECT_LT(gap, kMillisecond) << "crash-to-promotion gap " << gap << "ns";

  // Protocol order: suspicion -> revocation -> ballot cast -> ballot won ->
  // promotion. Revocation-before-ballot is the safety argument: by the time
  // any candidate asks for votes, the old primary is already write-fenced.
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kSuspicionRaised,
                                obs::TraceKind::kRkeyRevoked));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kRkeyRevoked,
                                obs::TraceKind::kBallotCast));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kBallotCast,
                                obs::TraceKind::kBallotWon));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kBallotWon,
                                obs::TraceKind::kPromotionDone));
  // Exactly one winner even with two concurrent suspecting replicas.
  EXPECT_EQ(q.count(obs::TraceKind::kBallotWon), 1u);

  // Data survived and writes resume immediately.
  for (int i = 0; i < 30; ++i) {
    auto v = cluster.get("k-" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "v-" + std::to_string(i));
  }
  EXPECT_EQ(cluster.put("after", "crash"), Status::kOk);

  // The legacy session expiry (2s later) must NOT promote again: the fast
  // promotion re-registered the znode under the new primary's session.
  cluster.run_for(5 * kSecond);
  EXPECT_EQ(cluster.failovers(), 1u);
  EXPECT_EQ(plane.query().count(obs::TraceKind::kPromotionDone, 0), 1u);
}

TEST(FastFailoverAgreement, GapHistogramRecordsMicrosecondFailover) {
  obs::Plane plane;
  auto opts = fast_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  cluster.run_for(10 * kMillisecond);
  cluster.crash_primary(0);
  cluster.run_for(50 * kMillisecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // The cluster records crash-to-promotion in cluster.failover_gap_us.
  auto& h = plane.metrics().histogram("cluster.failover_gap_us");
  ASSERT_EQ(h.count(), 1u);
  EXPECT_LT(h.max(), 1000u);  // < 1000us = 1ms
}

// --------------- bugfix 2: cached pointers vs the fast epoch advance
//
// Bug: RemotePtrCache entries (and hot-key promo-slab pointers) were only
// invalidated by lease expiry or the *legacy* promotion path's epoch bump.
// The fast path promotes in microseconds -- a cached pointer can have
// seconds of lease left -- so the epoch stamped at cache time must fence
// every one-sided read the instant kEpochPublished lands.
TEST(FastFailoverRegression, NoReadAgainstFencedRkeyAfterFastEpochBump) {
  obs::Plane plane;
  auto opts = fast_options();
  opts.obs = &plane;
  db::HydraCluster cluster(opts);

  const ShardId victim = 0;
  std::string key = "hot-0";
  ASSERT_EQ(cluster.owner_of(key), victim);  // single shard owns everything
  ASSERT_EQ(cluster.put(key, "v"), Status::kOk);

  // Pump popularity so the minted lease far outlives the microsecond
  // failover window.
  auto* sh = cluster.shard(victim);
  ASSERT_NE(sh, nullptr);
  for (int i = 0; i < 6; ++i) {
    (void)sh->store().get(key, cluster.scheduler().now(), /*grant_lease=*/true);
  }
  ASSERT_TRUE(cluster.get(key).has_value());  // mints + caches the pointer
  cluster.run_for(10 * kMillisecond);

  auto* cl = cluster.clients().front();
  const std::uint64_t hits_before = cl->stats().ptr_hits;
  ASSERT_EQ(*cluster.get(key), "v");
  ASSERT_GT(cl->stats().ptr_hits, hits_before) << "RDMA-read path never engaged";
  const std::uint32_t fenced_rkey = sh->arena_rkey();

  cluster.crash_primary(victim);
  cluster.run_for(50 * kMillisecond);  // fast window only -- lease still live
  ASSERT_EQ(cluster.failovers(), 1u);
  const auto epoch = plane.query().last(obs::TraceKind::kEpochPublished);
  ASSERT_TRUE(epoch.has_value());

  const std::uint64_t invalidations_before = cl->stats().epoch_invalidations;
  ASSERT_EQ(*cluster.get(key), "v");
  ASSERT_EQ(*cluster.get(key), "v");
  EXPECT_GT(cl->stats().epoch_invalidations, invalidations_before)
      << "the epoch check never fired for the stale pointer";

  const auto q = plane.query();
  std::size_t stale_reads = 0;
  std::size_t pre_crash_reads = 0;
  for (const auto& rec : q.of(obs::TraceKind::kReadPosted)) {
    if (rec.b != fenced_rkey) continue;
    if (rec.seq > epoch->seq) {
      ++stale_reads;
    } else {
      ++pre_crash_reads;
    }
  }
  EXPECT_GT(pre_crash_reads, 0u) << "test vacuous: key was never RDMA-read";
  EXPECT_EQ(stale_reads, 0u)
      << stale_reads << " one-sided reads posted against the fenced rkey";
}

TEST(FastFailoverRegression, HotKeyPromoSlabDemotesOnFastEpochAdvance) {
  obs::Plane plane;
  auto opts = fast_options();
  opts.obs = &plane;
  opts.shard_template.hotkey_top_k = 4;
  opts.shard_template.hotkey_promote_min_hits = 4;
  // Every probe must land on the shard's hit tracker: with a long lease the
  // second GET onwards rides the cached pointer one-sided and the tracker
  // never sees it.
  opts.shard_template.store.min_lease = 50 * kMicrosecond;
  opts.shard_template.store.max_lease = 100 * kMicrosecond;
  db::HydraCluster cluster(opts);

  const std::string key = "hk-0";
  ASSERT_EQ(cluster.put(key, "v"), Status::kOk);
  // Hammer the key hot enough to promote copies onto the followers; the
  // 2ms scan interval sees ~10 hits per window, past min_hits.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cluster.get(key).has_value());
    cluster.run_for(200 * kMicrosecond);
  }
  const auto promoted = plane.query().count(obs::TraceKind::kHotKeyPromoted);
  ASSERT_GT(promoted, 0u) << "test vacuous: key never promoted";

  // Crash before the next scan tick can cool the promotion: the epoch
  // advance, not cooldown, must be what withdraws it.
  cluster.crash_primary(0);
  cluster.run_for(50 * kMillisecond);
  ASSERT_EQ(cluster.failovers(), 1u);

  // The promo-slab copies must be withdrawn by the fast epoch advance
  // exactly as a migration epoch would, and reads still return the value.
  ASSERT_EQ(*cluster.get(key), "v");
  const auto q = plane.query();
  const auto epoch = q.last(obs::TraceKind::kEpochPublished);
  ASSERT_TRUE(epoch.has_value());
  bool epoch_demotion = false;
  for (const auto& rec : q.of(obs::TraceKind::kHotKeyDemoted)) {
    if (rec.seq > epoch->seq || rec.b == 1) epoch_demotion = true;
  }
  EXPECT_TRUE(epoch_demotion) << "no promo-slab demotion after the epoch bump";
}

// ------------------------------------------------------------- flag off

// With fast_failover off the revocation machinery must not exist at all:
// no pulses, no suspicion, no arena registrations -- the rkey sequence and
// virtual-time history stay byte-identical to earlier revisions.
TEST(FastFailoverOff, NoRevocationMachineryWhenDisabled) {
  obs::Plane plane;
  const chaos::RunReport r = chaos::ChaosRunner::run(
      chaos::ChaosSchedule::scripted().front(), 3, &plane);
  EXPECT_TRUE(r.passed());
  const auto q = plane.query();
  EXPECT_EQ(q.count(obs::TraceKind::kSuspicionRaised), 0u);
  EXPECT_EQ(q.count(obs::TraceKind::kRkeyRevoked), 0u);
  EXPECT_EQ(q.count(obs::TraceKind::kBallotCast), 0u);
}

// ------------------------------------------------------------ chaos sweep

// 9 scripted families x 5 seeds.
TEST(FailoverChaosSweep, ScriptedFamilies) {
  for (const auto& schedule : FailoverSchedule::scripted()) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const FailoverReport r = FailoverChaosRunner::run(schedule, seed);
      EXPECT_TRUE(r.passed()) << schedule.name << " seed " << seed << ":\n"
                              << describe(r);
      EXPECT_GT(r.acked_puts, 0u) << schedule.name << " seed " << seed;
    }
  }
}

// Seeded-random compositions; HYDRA_FAILOVER_RANDOM_RUNS scales the sweep
// (tier1.sh --failover raises it, the sanitizer passes lower it).
TEST(FailoverChaosSweep, RandomFamilies) {
  int runs = 40;
  if (const char* env = std::getenv("HYDRA_FAILOVER_RANDOM_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }
  for (int i = 1; i <= runs; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const FailoverSchedule schedule = FailoverSchedule::random(seed);
    const FailoverReport r = FailoverChaosRunner::run(schedule, seed);
    EXPECT_TRUE(r.passed()) << schedule.name << ":\n" << describe(r);
  }
}

TEST(FailoverChaosDeterminism, SameSeedSameHistory) {
  const auto& scripted = scripted_by_name("fast-kill-mid-ring-write");
  const FailoverReport a = FailoverChaosRunner::run(scripted, 7);
  const FailoverReport b = FailoverChaosRunner::run(scripted, 7);
  EXPECT_EQ(a.history, b.history);

  const FailoverSchedule random = FailoverSchedule::random(17);
  const FailoverReport c = FailoverChaosRunner::run(random, 17);
  const FailoverReport d = FailoverChaosRunner::run(random, 17);
  EXPECT_EQ(c.history, d.history);
  EXPECT_NE(a.history, c.history);
}

// ------------------------------------------- per-fault-point regressions

TEST(FailoverChaosRegression, TornRevocationStillPromotesFast) {
  const FailoverReport r =
      FailoverChaosRunner::run(scripted_by_name("fast-torn-revocation"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.fast_promotions, 1u) << describe(r);
  EXPECT_GT(r.revocations, 0u);
  EXPECT_LT(r.failover_gap, kMillisecond);
}

TEST(FailoverChaosRegression, DroppedRevocationRetriesAndPromotes) {
  const FailoverReport r =
      FailoverChaosRunner::run(scripted_by_name("fast-dropped-revocation"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.fast_promotions, 1u) << describe(r);
  EXPECT_LT(r.failover_gap, kMillisecond);
}

// The fallback ordering argument (DESIGN.md §14): when every revocation is
// lost and the round aborts, the legacy session-timeout promotion must still
// recover the shard -- slower, never less safe.
TEST(FailoverChaosRegression, RevocationStormFallsBackToLegacyPromotion) {
  const FailoverReport r = FailoverChaosRunner::run(
      scripted_by_name("fast-revocation-storm-falls-back"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u) << describe(r);
  EXPECT_EQ(r.fast_promotions, 0u) << describe(r);
  EXPECT_GE(r.rounds_aborted, 1u);
  EXPECT_GT(r.failover_gap, kMillisecond);  // it took the ~2.45s legacy path
}

TEST(FailoverChaosRegression, SplitBallotsElectExactlyOnePrimary) {
  const FailoverReport r =
      FailoverChaosRunner::run(scripted_by_name("fast-split-ballots"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.failovers, 1u) << describe(r);
  // Exactly one round won its ballot and promoted; the race was real --
  // several replicas suspected and opened rounds, and every loser either
  // lost the CAS outright or aborted on the bumped generation. (Counters,
  // not end-of-run traces: the promoted primary's pulse traffic evicts the
  // ballot records from the bounded node rings long before settle ends.)
  EXPECT_EQ(r.fast_promotions, 1u) << describe(r);
  EXPECT_GE(r.rounds_started, 2u) << describe(r);
  EXPECT_GE(r.ballots_lost + r.rounds_aborted, 1u) << describe(r);
}

TEST(FailoverChaosRegression, SwatKillMidRoundDoesNotBlockAgreement) {
  const FailoverReport r =
      FailoverChaosRunner::run(scripted_by_name("fast-swat-kill-mid-round"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.fast_promotions, 1u) << describe(r);
}

TEST(FailoverChaosRegression, ComposedMigrationCommitsUnderFastFailover) {
  const FailoverReport r = FailoverChaosRunner::run(
      scripted_by_name("fast-composed-with-migration"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u) << describe(r);
}

}  // namespace
}  // namespace hydra
