// Observability-plane tests: unit coverage for the trace ring / query /
// registry, and the golden-determinism contract -- attaching a Plane must
// not change a simulation's virtual-time history, and two enabled runs of
// the same seed must produce byte-identical snapshots.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "common/keygen.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "obs/plane.hpp"

namespace hydra {
namespace {

// ---------------------------------------------------------------- units

TEST(TraceRing, OverwritesOldestPastCapacity) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    obs::TraceRecord r;
    r.seq = i;
    ring.push(r);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 4u);
  // Oldest three (0,1,2) were overwritten; retained records are in order.
  EXPECT_EQ(recs.front().seq, 3u);
  EXPECT_EQ(recs.back().seq, 6u);
}

TEST(TraceQuery, OrdersByGlobalSeqAndAnswersHappenedBefore) {
  std::vector<obs::TraceRecord> recs;
  auto push = [&](std::uint64_t seq, obs::TraceKind kind, std::uint64_t shard) {
    obs::TraceRecord r;
    r.seq = seq;
    r.kind = kind;
    r.shard = shard;
    recs.push_back(r);
  };
  // Deliberately out of order, two shards interleaved.
  push(5, obs::TraceKind::kRingDrained, 0);
  push(1, obs::TraceKind::kFenced, 0);
  push(9, obs::TraceKind::kEpochPublished, 0);
  push(3, obs::TraceKind::kFenced, 1);
  push(7, obs::TraceKind::kRingDrained, 1);

  const obs::TraceQuery q(recs);
  ASSERT_EQ(q.all().size(), 5u);
  EXPECT_EQ(q.all().front().seq, 1u);
  EXPECT_EQ(q.all().back().seq, 9u);

  EXPECT_TRUE(q.happened_before(obs::TraceKind::kFenced, obs::TraceKind::kRingDrained));
  EXPECT_TRUE(q.happened_before(obs::TraceKind::kRingDrained,
                                obs::TraceKind::kEpochPublished, 0));
  EXPECT_FALSE(q.happened_before(obs::TraceKind::kEpochPublished, obs::TraceKind::kFenced));
  // Absent kinds never "happened before" anything.
  EXPECT_FALSE(q.happened_before(obs::TraceKind::kTornAck, obs::TraceKind::kFenced));

  EXPECT_EQ(q.count(obs::TraceKind::kFenced), 2u);
  EXPECT_EQ(q.count(obs::TraceKind::kFenced, 1), 1u);
  ASSERT_TRUE(q.first(obs::TraceKind::kFenced).has_value());
  EXPECT_EQ(q.first(obs::TraceKind::kFenced)->seq, 1u);
  ASSERT_TRUE(q.last(obs::TraceKind::kFenced).has_value());
  EXPECT_EQ(q.last(obs::TraceKind::kFenced)->seq, 3u);
  ASSERT_TRUE(q.first_after(obs::TraceKind::kRingDrained, 5).has_value());
  EXPECT_EQ(q.first_after(obs::TraceKind::kRingDrained, 5)->seq, 7u);
  EXPECT_FALSE(q.first_after(obs::TraceKind::kEpochPublished, 9).has_value());
}

TEST(Plane, RoutesRecordsToPerNodeAndClusterRings) {
  obs::Plane plane(16);
  plane.trace(10, 0, obs::TraceKind::kWritePosted);
  plane.trace(20, 2, obs::TraceKind::kReadPosted);
  plane.trace(30, kInvalidNode, obs::TraceKind::kPromotionStart, 7);
  ASSERT_NE(plane.node_ring(0), nullptr);
  EXPECT_EQ(plane.node_ring(0)->size(), 1u);
  ASSERT_NE(plane.node_ring(2), nullptr);
  EXPECT_EQ(plane.node_ring(2)->size(), 1u);
  EXPECT_EQ(plane.node_ring(1)->size(), 0u);  // grown but empty
  EXPECT_EQ(plane.cluster_ring().size(), 1u);
  EXPECT_EQ(plane.trace_count(), 3u);
  const auto q = plane.query();
  ASSERT_EQ(q.all().size(), 3u);
  // Global seq preserves emission order across rings.
  EXPECT_EQ(q.all()[0].kind, obs::TraceKind::kWritePosted);
  EXPECT_EQ(q.all()[2].kind, obs::TraceKind::kPromotionStart);
  EXPECT_EQ(q.all()[2].shard, 7u);
}

TEST(Registry, ReferencesStayStableAndJsonIsNameOrdered) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("z.last");
  reg.counter("a.first").add(1);
  reg.gauge("depth").set(-3);
  reg.histogram("lat").record(100);
  a.add(41);
  a.add(1);
  // The reference resolved before other insertions still targets "z.last".
  EXPECT_EQ(reg.counter("z.last").value(), 42u);

  std::string out;
  reg.write_json(out, 0);
  // Name-ordered: "a.first" precedes "z.last".
  EXPECT_LT(out.find("a.first"), out.find("z.last"));
  EXPECT_NE(out.find("\"depth\": -3"), std::string::npos);
  EXPECT_NE(out.find("\"lat\""), std::string::npos);

  std::string again;
  reg.write_json(again, 0);
  EXPECT_EQ(out, again);  // snapshots are deterministic
}

TEST(Registry, SummarizeMatchesHistogramPercentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<Duration>(i));
  const obs::LatencySummary s = obs::summarize(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min_ns, h.min());
  EXPECT_EQ(s.max_ns, h.max());
  EXPECT_EQ(s.p50_ns, h.percentile(50));
  EXPECT_EQ(s.p99_ns, h.percentile(99));
  EXPECT_EQ(s.p999_ns, h.percentile(99.9));
  EXPECT_DOUBLE_EQ(s.mean_ns, h.mean());
}

// ------------------------------------------------- golden determinism

db::ClusterOptions small_ha_options() {
  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.replicas = 1;
  opts.enable_swat = true;
  opts.shard_template.store.arena_bytes = 16 << 20;
  opts.shard_template.store.min_buckets = 1 << 12;
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  return opts;
}

/// The virtual-time history fingerprint the determinism contract pins:
/// final clock, event count, and every fabric-level op counter.
struct HistorySignature {
  Time now = 0;
  std::uint64_t events = 0;
  fabric::FabricStats fabric;
  std::uint64_t shard0_responses = 0;
  std::uint64_t failovers = 0;

  bool operator==(const HistorySignature& o) const {
    return now == o.now && events == o.events &&
           fabric.rdma_writes == o.fabric.rdma_writes &&
           fabric.rdma_reads == o.fabric.rdma_reads && fabric.sends == o.fabric.sends &&
           fabric.protection_errors == o.fabric.protection_errors &&
           fabric.dead_peer_errors == o.fabric.dead_peer_errors &&
           fabric.torn_writes == o.fabric.torn_writes &&
           fabric.dropped_writes == o.fabric.dropped_writes &&
           shard0_responses == o.shard0_responses && failovers == o.failovers;
  }
};

/// Closed-loop workload with a mid-run primary crash: exercises shards,
/// clients, replication and the failover plane in one deterministic run.
HistorySignature run_closed_loop(obs::Plane* plane) {
  db::ClusterOptions opts = small_ha_options();
  opts.obs = plane;
  db::HydraCluster cluster(opts);
  for (int i = 0; i < 40; ++i) {
    const auto k = static_cast<std::uint64_t>(i);
    EXPECT_EQ(cluster.put(format_key(k), synth_value(k)), Status::kOk);
  }
  cluster.crash_primary(0);
  cluster.run_for(5 * kSecond);
  for (int i = 0; i < 40; ++i) {
    const auto k = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(cluster.get(format_key(k)).has_value());
  }
  HistorySignature sig;
  sig.now = cluster.scheduler().now();
  sig.events = cluster.scheduler().events_executed();
  sig.fabric = cluster.fabric().stats();
  sig.shard0_responses = cluster.shard(0) != nullptr ? cluster.shard(0)->stats().responses : 0;
  sig.failovers = cluster.failovers();
  return sig;
}

TEST(GoldenDeterminism, ClosedLoopHistoryIdenticalWithObsOnAndOff) {
  const HistorySignature off = run_closed_loop(nullptr);
  obs::Plane plane;
  const HistorySignature on = run_closed_loop(&plane);
  EXPECT_TRUE(off == on) << "attaching the obs plane changed the simulation history";
  // And the enabled run actually observed something.
  EXPECT_GT(plane.trace_count(), 0u);
  EXPECT_GT(plane.metrics().counters().size(), 0u);
}

TEST(GoldenDeterminism, ChaosHistoriesIdenticalWithObsOnAndOff) {
  const auto schedules = chaos::ChaosSchedule::scripted();
  ASSERT_FALSE(schedules.empty());
  for (std::uint64_t seed : {7u, 21u}) {
    const chaos::RunReport off = chaos::ChaosRunner::run(schedules[0], seed);
    obs::Plane plane;
    const chaos::RunReport on = chaos::ChaosRunner::run(schedules[0], seed, &plane);
    EXPECT_EQ(off.history, on.history) << "seed " << seed;
    EXPECT_EQ(off.failovers, on.failovers);
    EXPECT_GT(plane.trace_count(), 0u);
  }
}

TEST(GoldenDeterminism, EnabledRunsProduceByteIdenticalSnapshotsPerSeed) {
  const auto schedules = chaos::ChaosSchedule::scripted();
  ASSERT_FALSE(schedules.empty());
  for (std::uint64_t seed : {3u, 11u}) {
    obs::Plane a;
    obs::Plane b;
    const chaos::RunReport ra = chaos::ChaosRunner::run(schedules[0], seed, &a);
    const chaos::RunReport rb = chaos::ChaosRunner::run(schedules[0], seed, &b);
    ASSERT_EQ(ra.history, rb.history);
    EXPECT_EQ(a.json(0), b.json(0)) << "seed " << seed;
  }
  // Distinct seeds produce distinct traces (the snapshot is not a constant).
  obs::Plane a;
  obs::Plane b;
  chaos::ChaosRunner::run(chaos::ChaosSchedule::random(1), 1, &a);
  chaos::ChaosRunner::run(chaos::ChaosSchedule::random(2), 2, &b);
  EXPECT_NE(a.json(0), b.json(0));
}

TEST(GoldenDeterminism, PromotionLatencyDerivableFromChaosTraceAlone) {
  // Find the scripted primary-kill schedule and reconstruct the promotion
  // timeline purely from trace events -- what bench_chaos_recovery reports.
  const auto schedules = chaos::ChaosSchedule::scripted();
  for (const auto& s : schedules) {
    bool kills_primary = false;
    for (const auto& f : s.faults) {
      kills_primary |= f.kind == chaos::FaultKind::kKillPrimary;
    }
    if (!kills_primary) continue;
    obs::Plane plane;
    const chaos::RunReport report = chaos::ChaosRunner::run(s, 42, &plane);
    ASSERT_TRUE(report.passed());
    const auto q = plane.query();
    const auto crash = q.first(obs::TraceKind::kCrashInjected);
    const auto done = q.first(obs::TraceKind::kPromotionDone);
    ASSERT_TRUE(crash.has_value());
    ASSERT_TRUE(done.has_value());
    EXPECT_LT(crash->seq, done->seq);
    const Duration promotion_latency = done->at - crash->at;
    EXPECT_GT(promotion_latency, kSecond);       // session timeout dominates
    EXPECT_LT(promotion_latency, 10 * kSecond);  // but recovery is bounded
    // The lifecycle chain is fully ordered.
    EXPECT_TRUE(q.happened_before(obs::TraceKind::kCrashInjected,
                                  obs::TraceKind::kPrimaryDeathObserved));
    EXPECT_TRUE(q.happened_before(obs::TraceKind::kPrimaryDeathObserved,
                                  obs::TraceKind::kPromotionStart));
    EXPECT_TRUE(q.happened_before(obs::TraceKind::kPromotionStart,
                                  obs::TraceKind::kRingDrained));
    EXPECT_TRUE(q.happened_before(obs::TraceKind::kRingDrained,
                                  obs::TraceKind::kEpochPublished));
    EXPECT_TRUE(q.happened_before(obs::TraceKind::kEpochPublished,
                                  obs::TraceKind::kPromotionDone));
    return;
  }
  FAIL() << "no scripted schedule kills a primary";
}

TEST(Plane, JsonCarriesSchemaAndTrace) {
  obs::Plane plane;
  plane.metrics().counter("x").add(5);
  plane.trace(123, 0, obs::TraceKind::kWritePosted, obs::kNoShard, 64, 7);
  const std::string doc = plane.json(456);
  EXPECT_NE(doc.find("\"schema\": \"hydradb-obs-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"virtual_time_ns\": 456"), std::string::npos);
  EXPECT_NE(doc.find("\"x\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"event\": \"write_posted\""), std::string::npos);
  EXPECT_NE(doc.find("\"at_ns\": 123"), std::string::npos);
}

}  // namespace
}  // namespace hydra
