// Tests for the consistent-hash ring and the ZooKeeper-lite coordinator.
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "cluster/coordinator.hpp"
#include "cluster/ring.hpp"
#include "common/hash.hpp"
#include "common/keygen.hpp"

namespace hydra::cluster {
namespace {

// ---------------------------------------------------------------- ring

TEST(Ring, EmptyRingOwnsNothing) {
  ConsistentHashRing ring;
  EXPECT_EQ(ring.owner(123), kInvalidShard);
  EXPECT_EQ(ring.shard_count(), 0u);
}

TEST(Ring, SingleShardOwnsEverything) {
  ConsistentHashRing ring;
  ring.add_shard(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.owner(hash_key(format_key(static_cast<std::uint64_t>(i)))), 5u);
  }
}

TEST(Ring, OwnershipIsDeterministic) {
  ConsistentHashRing a, b;
  for (ShardId s = 0; s < 8; ++s) {
    a.add_shard(s);
    b.add_shard(s);
  }
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = hash_key(format_key(static_cast<std::uint64_t>(i)));
    EXPECT_EQ(a.owner(h), b.owner(h));
  }
}

TEST(Ring, LoadSpreadsAcrossShards) {
  ConsistentHashRing ring(/*vnodes=*/64);
  constexpr int kShards = 8;
  for (ShardId s = 0; s < kShards; ++s) ring.add_shard(s);
  std::map<ShardId, int> counts;
  constexpr int kKeys = 40000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.owner(hash_key(format_key(static_cast<std::uint64_t>(i))))];
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(kShards));
  for (const auto& [shard, n] : counts) {
    EXPECT_GT(n, kKeys / kShards / 3) << "shard " << shard << " starved";
    EXPECT_LT(n, kKeys / kShards * 3) << "shard " << shard << " overloaded";
  }
}

TEST(Ring, RemovalOnlyMovesTheRemovedShardsKeys) {
  ConsistentHashRing ring;
  for (ShardId s = 0; s < 8; ++s) ring.add_shard(s);
  std::map<int, ShardId> before;
  for (int i = 0; i < 5000; ++i) {
    before[i] = ring.owner(hash_key(format_key(static_cast<std::uint64_t>(i))));
  }
  ring.remove_shard(3);
  for (const auto& [i, owner] : before) {
    const ShardId now = ring.owner(hash_key(format_key(static_cast<std::uint64_t>(i))));
    if (owner == 3) {
      EXPECT_NE(now, 3u);
    } else {
      EXPECT_EQ(now, owner) << "key " << i << " moved although its shard survived";
    }
  }
}

// Adversarial vnode collisions via an injectable point function: every
// shard's replica r lands on the same point, so ownership of each point is
// pure tie-break. The lowest ShardId must win regardless of insertion
// order, and the runner-up must inherit when the winner is removed.
TEST(Ring, VnodeCollisionTieBreakIsLowestShardId) {
  // All shards collide on every point: point depends only on the replica.
  const auto collide = [](ShardId, int replica) {
    return static_cast<std::uint64_t>(replica) * 0x0101010101010101ULL;
  };
  ConsistentHashRing ascending(4, collide);
  ConsistentHashRing descending(4, collide);
  for (ShardId s = 0; s < 4; ++s) ascending.add_shard(s);
  for (ShardId s = 4; s-- > 0;) descending.add_shard(s);

  for (std::uint64_t h = 0; h < 4096; h += 7) {
    EXPECT_EQ(ascending.owner(h), 0u) << "lowest id must serve a contested point";
    EXPECT_EQ(descending.owner(h), ascending.owner(h))
        << "insertion order changed ownership of a contested point";
  }

  // Remove the winner: the runner-up (next-lowest id) inherits every point.
  ascending.remove_shard(0);
  for (std::uint64_t h = 0; h < 4096; h += 7) {
    EXPECT_EQ(ascending.owner(h), 1u);
  }
  // Partial collisions: shards {2, 5} contest, 7 stands alone elsewhere.
  const auto partial = [](ShardId shard, int replica) {
    if (shard == 2 || shard == 5) return 1000ULL + static_cast<std::uint64_t>(replica);
    return 500'000ULL + static_cast<std::uint64_t>(replica);
  };
  ConsistentHashRing mixed(2, partial);
  mixed.add_shard(5);
  mixed.add_shard(7);
  mixed.add_shard(2);
  EXPECT_EQ(mixed.owner(900), 2u);  // contested points: lowest of {2, 5}
  mixed.remove_shard(2);
  EXPECT_EQ(mixed.owner(900), 5u);  // runner-up inherits
  mixed.remove_shard(5);
  EXPECT_EQ(mixed.owner(900), 7u);  // wrap to the sole survivor
}

// The consistent-hashing contract the migration plan relies on: growing
// N -> N+1 shards remaps ~1/(N+1) of the keyspace (all of it onto the new
// shard), shrinking remaps exactly the victim's ~1/N share. 64k-key sample,
// 50% relative tolerance (64 vnodes is a coarse smoother).
TEST(Ring, RebalancingMovesAboutOneNth) {
  constexpr int kShards = 8;
  constexpr std::uint64_t kKeys = 64 * 1024;
  ConsistentHashRing ring;
  for (ShardId s = 0; s < kShards; ++s) ring.add_shard(s);

  std::vector<ShardId> before(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) before[i] = ring.owner(mix64(i));

  // --- grow: 8 -> 9 ---------------------------------------------------------
  ring.add_shard(kShards);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const ShardId now = ring.owner(mix64(i));
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(now, static_cast<ShardId>(kShards))
          << "key " << i << " moved between two surviving shards";
    }
  }
  const double expect_grow = static_cast<double>(kKeys) / (kShards + 1);
  EXPECT_GT(moved, static_cast<std::uint64_t>(expect_grow * 0.5)) << "moved " << moved;
  EXPECT_LT(moved, static_cast<std::uint64_t>(expect_grow * 1.5)) << "moved " << moved;

  // --- shrink back: 9 -> 8 --------------------------------------------------
  ring.remove_shard(kShards);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ(ring.owner(mix64(i)), before[i]) << "shrink did not restore key " << i;
  }

  // --- drain a founding member: 8 -> 7 --------------------------------------
  ring.remove_shard(3);
  std::uint64_t drained = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const ShardId now = ring.owner(mix64(i));
    if (before[i] == 3) {
      ++drained;
      EXPECT_NE(now, 3u);
    } else {
      EXPECT_EQ(now, before[i]) << "key " << i << " moved although its shard survived";
    }
  }
  const double expect_drain = static_cast<double>(kKeys) / kShards;
  EXPECT_GT(drained, static_cast<std::uint64_t>(expect_drain * 0.5));
  EXPECT_LT(drained, static_cast<std::uint64_t>(expect_drain * 1.5));
}

TEST(Ring, VersionBumpsOnMembershipChange) {
  ConsistentHashRing ring;
  const std::uint64_t v0 = ring.version();
  ring.add_shard(1);
  EXPECT_GT(ring.version(), v0);
  const std::uint64_t v1 = ring.version();
  ring.add_shard(1);  // duplicate: no change
  EXPECT_EQ(ring.version(), v1);
  ring.remove_shard(1);
  EXPECT_GT(ring.version(), v1);
  ring.remove_shard(1);  // already gone: no change
}

TEST(Ring, ShardsListsMembers) {
  ConsistentHashRing ring;
  ring.add_shard(2);
  ring.add_shard(0);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_TRUE(ring.contains(2));
  EXPECT_FALSE(ring.contains(1));
  EXPECT_EQ(ring.shards(), (std::vector<ShardId>{0, 2}));
}

// ---------------------------------------------------------------- coordinator

class CoordinatorTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  Coordinator coord{sched};
};

TEST_F(CoordinatorTest, CreateGetSetRemove) {
  bool created = false;
  coord.create("/a", "v1", 0, [&](bool ok) { created = ok; });
  sched.run_for(kSecond);
  EXPECT_TRUE(created);
  EXPECT_TRUE(coord.exists("/a"));
  EXPECT_EQ(coord.data("/a"), "v1");

  bool duplicate_ok = true;
  coord.create("/a", "v2", 0, [&](bool ok) { duplicate_ok = ok; });
  sched.run_for(kSecond);
  EXPECT_FALSE(duplicate_ok) << "duplicate create must fail";

  coord.set_data("/a", "v3");
  sched.run_for(kSecond);
  EXPECT_EQ(coord.data("/a"), "v3");

  bool got = false;
  std::string data;
  coord.get_data("/a", [&](bool ok, std::string d) {
    got = ok;
    data = std::move(d);
  });
  sched.run_for(kSecond);
  EXPECT_TRUE(got);
  EXPECT_EQ(data, "v3");

  coord.remove("/a");
  sched.run_for(kSecond);
  EXPECT_FALSE(coord.exists("/a"));
}

TEST_F(CoordinatorTest, SetOnMissingNodeFails) {
  bool ok = true;
  coord.set_data("/ghost", "x", [&](bool r) { ok = r; });
  sched.run_for(kSecond);
  EXPECT_FALSE(ok);
}

TEST_F(CoordinatorTest, ChildrenListsByPrefix) {
  coord.create("/shards/0/primary", "n0");
  coord.create("/shards/1/primary", "n1");
  coord.create("/swat/0", "m");
  sched.run_for(kSecond);
  EXPECT_EQ(coord.children("/shards/").size(), 2u);
  EXPECT_EQ(coord.children("/swat/").size(), 1u);
  EXPECT_TRUE(coord.children("/none/").empty());
}

TEST_F(CoordinatorTest, WatchesFireOnEachEventType) {
  std::vector<std::pair<std::string, WatchEvent>> events;
  coord.watch("/w", [&](const std::string& p, WatchEvent e) { events.emplace_back(p, e); });
  coord.create("/w", "1");
  sched.run_for(kSecond);
  coord.set_data("/w", "2");
  sched.run_for(kSecond);
  coord.remove("/w");
  sched.run_for(kSecond);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].second, WatchEvent::kCreated);
  EXPECT_EQ(events[1].second, WatchEvent::kChanged);
  EXPECT_EQ(events[2].second, WatchEvent::kDeleted);
}

TEST_F(CoordinatorTest, PrefixWatchSeesAllChildren) {
  int fired = 0;
  coord.watch_prefix("/shards/", [&](const std::string&, WatchEvent) { ++fired; });
  coord.create("/shards/3/primary", "x");
  coord.create("/other", "y");
  sched.run_for(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST_F(CoordinatorTest, EphemeralNodesDieWithExpiredSession) {
  const SessionId s = coord.open_session("proc");
  coord.create("/eph", "x", s);
  sched.run_for(kSecond);
  ASSERT_TRUE(coord.exists("/eph"));
  ASSERT_TRUE(coord.session_alive(s));

  bool deleted = false;
  coord.watch("/eph", [&](const std::string&, WatchEvent e) {
    if (e == WatchEvent::kDeleted) deleted = true;
  });
  // No heartbeats: the sweep expires the session and reaps the znode.
  sched.run_for(5 * kSecond);
  EXPECT_FALSE(coord.session_alive(s));
  EXPECT_FALSE(coord.exists("/eph"));
  EXPECT_TRUE(deleted);
}

TEST_F(CoordinatorTest, HeartbeatsKeepSessionAlive) {
  const SessionId s = coord.open_session("proc");
  coord.create("/eph", "x", s);
  // Heartbeat every 500ms against a 2s timeout.
  for (int i = 1; i <= 20; ++i) {
    sched.at(static_cast<Time>(i) * 500 * kMillisecond, [&] { coord.heartbeat(s); });
  }
  sched.run_for(10 * kSecond);
  EXPECT_TRUE(coord.session_alive(s));
  EXPECT_TRUE(coord.exists("/eph"));
  // Stop heartbeating: it must now expire.
  sched.run_for(5 * kSecond);
  EXPECT_FALSE(coord.exists("/eph"));
}

TEST_F(CoordinatorTest, CloseSessionReapsImmediately) {
  const SessionId s = coord.open_session("proc");
  coord.create("/eph", "x", s);
  sched.run_for(kSecond);
  coord.close_session(s);
  EXPECT_FALSE(coord.exists("/eph"));
  EXPECT_FALSE(coord.session_alive(s));
}

TEST_F(CoordinatorTest, PersistentNodesSurviveSessionDeath) {
  const SessionId s = coord.open_session("proc");
  coord.create("/persistent", "x", 0);
  coord.create("/eph", "y", s);
  sched.run_for(5 * kSecond);
  EXPECT_TRUE(coord.exists("/persistent"));
  EXPECT_FALSE(coord.exists("/eph"));
}

TEST_F(CoordinatorTest, CreateWithDeadSessionFails) {
  const SessionId s = coord.open_session("proc");
  coord.close_session(s);
  bool ok = true;
  coord.create("/eph", "x", s, [&](bool r) { ok = r; });
  sched.run_for(kSecond);
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace hydra::cluster
