// Unit tests for the simulated RDMA fabric: memory registration, one-sided
// Write/Read semantics, in-order delivery, Send/Recv, protection, failures
// and the TCP model.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "sim/scheduler.hpp"

namespace hydra::fabric {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string string_of(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

class FabricTest : public ::testing::Test {
 protected:
  sim::Scheduler sched;
  Fabric fabric{sched};

  struct Endpoint {
    Node* node;
    std::vector<std::byte> memory;
    MemoryRegion* mr;
  };

  Endpoint make_endpoint(const std::string& name, std::size_t mem = 4096) {
    Endpoint ep;
    ep.node = &fabric.add_node(name);
    ep.memory.resize(mem);
    ep.mr = ep.node->register_memory(ep.memory);
    return ep;
  }
};

// ------------------------------------------------------------ registration

TEST_F(FabricTest, RegionsHaveUniqueRkeysAndBounds) {
  auto a = make_endpoint("a");
  std::vector<std::byte> more(128);
  MemoryRegion* mr2 = a.node->register_memory(more);
  EXPECT_NE(a.mr->rkey(), mr2->rkey());
  EXPECT_EQ(a.node->find_region(a.mr->rkey()), a.mr);
  EXPECT_EQ(a.node->find_region(mr2->rkey()), mr2);
  EXPECT_EQ(a.node->find_region(9999), nullptr);
  EXPECT_TRUE(a.mr->contains(0, 4096));
  EXPECT_TRUE(a.mr->contains(4096, 0));
  EXPECT_FALSE(a.mr->contains(4090, 7));
  EXPECT_FALSE(a.mr->contains(5000, 1));
}

// ------------------------------------------------------------ RDMA write

TEST_F(FabricTest, WriteDeliversBytesToRemoteMemory) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  const std::string msg = "hello, rdma";
  bool completed = false;
  Time complete_time = 0;
  qa->post_write(bytes_of(msg), b.mr->addr(100), 7,
                 [&](const Completion& wc) {
                   completed = true;
                   complete_time = sched.now();
                   EXPECT_EQ(wc.status, WcStatus::kSuccess);
                   EXPECT_EQ(wc.wr_id, 7u);
                   EXPECT_EQ(wc.byte_len, msg.size());
                 });
  sched.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(std::memcmp(b.memory.data() + 100, msg.data(), msg.size()), 0);
  // Completion needs a full round trip: at least 2x propagation.
  EXPECT_GE(complete_time, 2 * fabric.cost().rdma_propagation);
  EXPECT_EQ(fabric.stats().rdma_writes, 1u);
}

TEST_F(FabricTest, WriteHookFiresAtCommitTime) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  std::uint64_t hook_offset = 0;
  std::uint32_t hook_len = 0;
  Time hook_time = 0;
  b.mr->set_write_hook([&](std::uint64_t off, std::uint32_t len) {
    hook_offset = off;
    hook_len = len;
    hook_time = sched.now();
  });
  const std::string msg = "ping";
  qa->post_write(bytes_of(msg), b.mr->addr(64));
  sched.run();
  EXPECT_EQ(hook_offset, 64u);
  EXPECT_EQ(hook_len, 4u);
  EXPECT_GE(hook_time, fabric.cost().rdma_propagation);
}

TEST_F(FabricTest, WritesOnOneQpCommitInPostedOrder) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b", 1 << 20);
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  std::vector<int> commits;
  b.mr->set_write_hook([&](std::uint64_t off, std::uint32_t) {
    commits.push_back(static_cast<int>(off >> 16));
  });
  // A large write followed by a tiny write: without RC ordering the tiny
  // one could land first.
  std::vector<std::byte> big(512 * 1024, std::byte{1});
  std::vector<std::byte> tiny(8, std::byte{2});
  qa->post_write(big, b.mr->addr(0));
  qa->post_write(tiny, b.mr->addr(1 << 16));
  sched.run();
  ASSERT_EQ(commits.size(), 2u);
  EXPECT_EQ(commits[0], 0);
  EXPECT_EQ(commits[1], 1);
}

TEST_F(FabricTest, ConcurrentBigWritesSerializeOnTheWire) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b", 1 << 21);
  auto [q1, u1] = fabric.connect(a.node->id(), b.node->id());
  auto [q2, u2] = fabric.connect(a.node->id(), b.node->id());
  (void)u1;
  (void)u2;
  std::vector<Time> commit_times;
  b.mr->set_write_hook([&](std::uint64_t, std::uint32_t) {
    commit_times.push_back(sched.now());
  });
  std::vector<std::byte> big(1 << 20, std::byte{3});
  q1->post_write(big, b.mr->addr(0));
  q2->post_write(big, b.mr->addr(0));
  sched.run();
  ASSERT_EQ(commit_times.size(), 2u);
  const auto wire = fabric.cost().rdma_wire_time(1 << 20);
  EXPECT_GE(commit_times[1] - commit_times[0], wire / 2);
}

TEST_F(FabricTest, WriteWithBadRkeyFailsWithProtectionError) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  WcStatus status = WcStatus::kSuccess;
  const std::string msg = "x";
  qa->post_write(bytes_of(msg), RemoteAddr{424242, 0}, 0,
                 [&](const Completion& wc) { status = wc.status; });
  sched.run();
  EXPECT_EQ(status, WcStatus::kProtectionError);
  EXPECT_EQ(fabric.stats().protection_errors, 1u);
}

TEST_F(FabricTest, WriteOutOfBoundsFailsWithProtectionError) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b", 64);
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  WcStatus status = WcStatus::kSuccess;
  const std::string msg = "0123456789";
  qa->post_write(bytes_of(msg), b.mr->addr(60), 0,
                 [&](const Completion& wc) { status = wc.status; });
  sched.run();
  EXPECT_EQ(status, WcStatus::kProtectionError);
}

TEST_F(FabricTest, WriteToDeadNodeTimesOut) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  fabric.kill_node(b.node->id());
  WcStatus status = WcStatus::kSuccess;
  Time done = 0;
  const std::string msg = "x";
  qa->post_write(bytes_of(msg), b.mr->addr(0), 0, [&](const Completion& wc) {
    status = wc.status;
    done = sched.now();
  });
  sched.run();
  EXPECT_EQ(status, WcStatus::kRemoteDead);
  EXPECT_GE(done, fabric.cost().peer_timeout);
  // The dead node's memory is untouched.
  EXPECT_EQ(b.memory[0], std::byte{0});
}

TEST_F(FabricTest, SourceBufferSnapshotAtPostTime) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  std::string msg = "original";
  qa->post_write(bytes_of(msg), b.mr->addr(0));
  msg = "clobberd";  // modified after post: must not affect delivery
  sched.run();
  EXPECT_EQ(std::memcmp(b.memory.data(), "original", 8), 0);
}

// ------------------------------------------------------------ RDMA read

TEST_F(FabricTest, ReadFetchesRemoteBytes) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  const std::string payload = "server-side-value";
  std::memcpy(b.memory.data() + 256, payload.data(), payload.size());

  std::vector<std::byte> dst(payload.size());
  bool done = false;
  qa->post_read(dst, b.mr->addr(256), 5, [&](const Completion& wc) {
    done = true;
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
    EXPECT_EQ(wc.op, WcOp::kRead);
  });
  sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(string_of(dst), payload);
  EXPECT_EQ(fabric.stats().rdma_reads, 1u);
}

TEST_F(FabricTest, ReadObservesMemoryAtServeTimeNotCompletionTime) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  std::memcpy(b.memory.data(), "AAAA", 4);
  std::vector<std::byte> dst(4);
  std::string got;
  qa->post_read(dst, b.mr->addr(0), 0,
                [&](const Completion&) { got = string_of(dst); });
  // Server overwrites the memory long after the read was served but before
  // events drain; the read must have snapshotted the old value.
  sched.at(1, [&] { /* read still in flight */ });
  sched.run_until(sched.now());
  std::memcpy(b.memory.data(), "BBBB", 4);
  sched.run();
  // Depending on serve time this sees AAAA (snapshot before overwrite at
  // t~0) -- the overwrite happened at t=0 too, so accept either, but the
  // value must be consistent (all As or all Bs, never torn).
  EXPECT_TRUE(got == "AAAA" || got == "BBBB") << got;
}

TEST_F(FabricTest, ReadBadRkeyFails) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  std::vector<std::byte> dst(8);
  WcStatus status = WcStatus::kSuccess;
  qa->post_read(dst, RemoteAddr{777, 0}, 0,
                [&](const Completion& wc) { status = wc.status; });
  sched.run();
  EXPECT_EQ(status, WcStatus::kProtectionError);
}

TEST_F(FabricTest, ReadFromDeadNodeTimesOut) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  fabric.kill_node(b.node->id());
  std::vector<std::byte> dst(8);
  WcStatus status = WcStatus::kSuccess;
  qa->post_read(dst, b.mr->addr(0), 0,
                [&](const Completion& wc) { status = wc.status; });
  sched.run();
  EXPECT_EQ(status, WcStatus::kRemoteDead);
}

TEST_F(FabricTest, ReadConsumesZeroTargetCpuButUsesTargetNic) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  std::vector<std::byte> dst(1024);
  qa->post_read(dst, b.mr->addr(0));
  sched.run();
  EXPECT_GT(b.node->nic().tx_bytes, 1000u);  // response streamed by target NIC
  EXPECT_GT(b.node->nic().tx_ops, 0u);
}

// ------------------------------------------------------------ send / recv

TEST_F(FabricTest, SendLandsInPostedRecv) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());

  std::vector<std::byte> recv_buf(64);
  std::string received;
  std::uint64_t recv_wr = 0;
  qb->set_recv_handler([&](const Completion& wc, std::span<std::byte> data) {
    received = string_of(data);
    recv_wr = wc.wr_id;
  });
  qb->post_recv(recv_buf, 11);

  const std::string msg = "two-sided";
  bool send_done = false;
  qa->post_send(bytes_of(msg), 3, [&](const Completion& wc) {
    send_done = true;
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
  });
  sched.run();
  EXPECT_TRUE(send_done);
  EXPECT_EQ(received, msg);
  EXPECT_EQ(recv_wr, 11u);
  EXPECT_EQ(fabric.stats().sends, 1u);
}

TEST_F(FabricTest, SendWaitsForRecvWhenNoneIsPosted) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());

  std::string received;
  qb->set_recv_handler([&](const Completion&, std::span<std::byte> data) {
    received = string_of(data);
  });
  const std::string msg = "rnr";
  qa->post_send(bytes_of(msg));
  sched.run();
  EXPECT_TRUE(received.empty());  // held: receiver not ready

  std::vector<std::byte> recv_buf(16);
  qb->post_recv(recv_buf);
  sched.run();
  EXPECT_EQ(received, msg);
}

TEST_F(FabricTest, SendsArriveInOrder) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());

  std::vector<std::string> received;
  qb->set_recv_handler([&](const Completion&, std::span<std::byte> data) {
    received.push_back(string_of(data));
  });
  std::vector<std::vector<std::byte>> bufs(5, std::vector<std::byte>(16));
  for (auto& buf : bufs) qb->post_recv(buf);
  for (int i = 0; i < 5; ++i) {
    const std::string m = "msg" + std::to_string(i);
    qa->post_send(bytes_of(m));
  }
  sched.run();
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], "msg" + std::to_string(i));
}

TEST_F(FabricTest, TwoSidedIsSlowerThanOneSidedWrite) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());

  // Measure write commit time.
  Time write_commit = 0;
  b.mr->set_write_hook([&](std::uint64_t, std::uint32_t) { write_commit = sched.now(); });
  const std::string msg(32, 'w');
  qa->post_write(bytes_of(msg), b.mr->addr(0));
  sched.run();

  // Fresh pair for the send measurement so NIC state matches.
  sim::Scheduler sched2;
  Fabric fabric2{sched2};
  Node& a2 = fabric2.add_node("a2");
  Node& b2 = fabric2.add_node("b2");
  std::vector<std::byte> mem2(4096);
  b2.register_memory(mem2);
  auto [qa2, qb2] = fabric2.connect(a2.id(), b2.id());
  Time send_commit = 0;
  qb2->set_recv_handler([&](const Completion&, std::span<std::byte>) {
    send_commit = sched2.now();
  });
  std::vector<std::byte> rb(64);
  qb2->post_recv(rb);
  qa2->post_send(bytes_of(msg));
  sched2.run();

  EXPECT_GT(send_commit, write_commit);
  EXPECT_GE(send_commit - write_commit, fabric.cost().two_sided_extra);
}

// ------------------------------------------------------------ QP penalty

TEST(CostModel, QpPenaltyShape) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.qp_penalty(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_penalty_threshold), 1.0);
  EXPECT_GT(cm.qp_penalty(cm.qp_penalty_threshold + 50), 1.0);
  EXPECT_LT(cm.qp_penalty(cm.qp_penalty_threshold + 50),
            cm.qp_penalty(cm.qp_penalty_threshold + 100));
  // Tier-1 plateau holds up to the extreme threshold...
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_extreme_threshold), cm.qp_penalty_cap);
  // ...then the ICM-thrash tier climbs toward the extreme cap.
  EXPECT_GT(cm.qp_penalty(cm.qp_extreme_threshold + 100), cm.qp_penalty_cap);
  EXPECT_DOUBLE_EQ(cm.qp_penalty(100000), cm.qp_extreme_cap);
}

TEST(CostModel, QpPenaltyExactBoundaries) {
  CostModel cm;
  // At the threshold: exactly identity. One past it: exactly one slope step.
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_penalty_threshold), 1.0);
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_penalty_threshold + 1), 1.0 + cm.qp_penalty_slope);
  // First count at which tier-1 saturates: threshold + ceil(span / slope).
  const auto cap_at = cm.qp_penalty_threshold +
                      static_cast<std::uint32_t>(
                          std::ceil((cm.qp_penalty_cap - 1.0) / cm.qp_penalty_slope));
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cap_at), cm.qp_penalty_cap);
  EXPECT_LT(cm.qp_penalty(cap_at - 1), cm.qp_penalty_cap);
  // Tier-2 boundaries: identity with tier-1 at the extreme threshold, one
  // extreme slope step past it, and saturation at the extreme cap.
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_extreme_threshold), cm.qp_penalty_cap);
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_extreme_threshold + 1),
                   cm.qp_penalty_cap + cm.qp_extreme_slope);
  const auto extreme_cap_at =
      cm.qp_extreme_threshold +
      static_cast<std::uint32_t>(
          std::ceil((cm.qp_extreme_cap - cm.qp_penalty_cap) / cm.qp_extreme_slope));
  EXPECT_DOUBLE_EQ(cm.qp_penalty(extreme_cap_at), cm.qp_extreme_cap);
  EXPECT_LT(cm.qp_penalty(extreme_cap_at - 1), cm.qp_extreme_cap);
}

// The whole curve must be monotone non-decreasing -- in particular across
// both knees (tier-1 threshold and the extreme/ICM-thrash threshold), where
// the regression this pins lived: the old clamp let the penalty *drop* when
// crossing qp_extreme_threshold.
TEST(CostModel, QpPenaltyMonotoneNonDecreasingAcrossBothKnees) {
  CostModel cm;
  double prev = cm.qp_penalty(0);
  for (std::uint32_t qp = 1; qp <= cm.qp_extreme_threshold + 8000; ++qp) {
    const double cur = cm.qp_penalty(qp);
    ASSERT_GE(cur, prev) << "penalty decreased at qp_count " << qp;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, cm.qp_extreme_cap);  // sweep reached saturation
}

// Adversarial configuration: qp_extreme_cap below the tier-1 cap. The
// penalty must stay continuous and flat (never dip) past the extreme knee
// -- min(g, qp_extreme_cap) alone would have ordered a price *cut* for
// opening more QPs.
TEST(CostModel, QpPenaltyInvertedCapsNeverDip) {
  CostModel cm;
  cm.qp_extreme_cap = cm.qp_penalty_cap / 2.0;
  double prev = cm.qp_penalty(0);
  for (std::uint32_t qp = 1; qp <= cm.qp_extreme_threshold + 1000; ++qp) {
    const double cur = cm.qp_penalty(qp);
    ASSERT_GE(cur, prev) << "penalty decreased at qp_count " << qp;
    prev = cur;
  }
  // Continuity at the extreme knee: one QP past it costs exactly the same
  // as at it (the inverted cap pins tier-2 to the tier-1 plateau).
  EXPECT_DOUBLE_EQ(cm.qp_penalty(cm.qp_extreme_threshold + 1),
                   cm.qp_penalty(cm.qp_extreme_threshold));
}

// ------------------------------------------------------------ disconnect

TEST_F(FabricTest, DisconnectReleasesQpCountAndPenaltyRecedes) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");

  // Blow past the penalty threshold with throwaway connections.
  std::vector<QueuePair*> extra;
  const std::uint32_t n = fabric.cost().qp_penalty_threshold + 40;
  for (std::uint32_t i = 0; i < n; ++i) {
    extra.push_back(fabric.connect(a.node->id(), b.node->id()).first);
  }
  EXPECT_EQ(a.node->nic().qp_count, n);
  EXPECT_GT(fabric.cost().qp_penalty(a.node->nic().qp_count), 1.0);

  // Reclaim back below the threshold: the penalty must return to exactly 1.0
  // on both NICs and the live census must match.
  for (QueuePair* qp : extra) fabric.disconnect(qp);
  EXPECT_EQ(a.node->nic().qp_count, 0u);
  EXPECT_EQ(b.node->nic().qp_count, 0u);
  EXPECT_DOUBLE_EQ(fabric.cost().qp_penalty(a.node->nic().qp_count), 1.0);
  EXPECT_DOUBLE_EQ(fabric.cost().qp_penalty(b.node->nic().qp_count), 1.0);
  EXPECT_EQ(fabric.live_qp_pairs(), 0u);
  EXPECT_EQ(fabric.stats().qp_disconnects, n);

  // Disconnecting an already-closed endpoint is a no-op.
  fabric.disconnect(extra.front());
  EXPECT_EQ(fabric.stats().qp_disconnects, n);
}

TEST_F(FabricTest, DisconnectFlushesInFlightWriteWithoutCommitting) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  const std::string msg = "should-never-land";
  bool completed = false;
  qa->post_write(bytes_of(msg), b.mr->addr(0), 1, [&](const Completion& wc) {
    completed = true;
    EXPECT_EQ(wc.status, WcStatus::kFlushed);
  });
  fabric.disconnect(qa);  // teardown races the in-flight write
  sched.run();

  EXPECT_TRUE(completed);
  EXPECT_NE(string_of(std::span(b.memory).subspan(0, msg.size())), msg);
}

TEST_F(FabricTest, ReusedQpSlotDoesNotDeliverStaleOps) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto c = make_endpoint("c");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  const std::string stale = "stale-op";
  qa->post_write(bytes_of(stale), b.mr->addr(0));
  fabric.disconnect(qa);

  // The recycled pair now carries a->c traffic; the stale a->b write must
  // not commit anywhere even though the object was reused.
  auto [qa2, qc] = fabric.connect(a.node->id(), c.node->id());
  EXPECT_EQ(qa2, qa);  // slot actually reused
  EXPECT_EQ(fabric.stats().qp_slot_reuses, 1u);
  (void)qc;
  const std::string fresh = "fresh-op";
  bool fresh_done = false;
  qa2->post_write(bytes_of(fresh), c.mr->addr(0), 2, [&](const Completion& wc) {
    fresh_done = true;
    EXPECT_EQ(wc.status, WcStatus::kSuccess);
  });
  sched.run();

  EXPECT_TRUE(fresh_done);
  EXPECT_NE(string_of(std::span(b.memory).subspan(0, stale.size())), stale);
  EXPECT_EQ(string_of(std::span(c.memory).subspan(0, fresh.size())), fresh);
  EXPECT_EQ(a.node->nic().qp_count, 1u);
  EXPECT_EQ(b.node->nic().qp_count, 0u);
}

TEST_F(FabricTest, PostOnClosedQpFlushesImmediately) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  fabric.disconnect(qa);

  const std::string msg = "late";
  int flushed = 0;
  auto expect_flush = [&](const Completion& wc) {
    EXPECT_EQ(wc.status, WcStatus::kFlushed);
    ++flushed;
  };
  qa->post_write(bytes_of(msg), b.mr->addr(0), 1, expect_flush);
  std::vector<std::byte> buf(16);
  qa->post_read(buf, b.mr->addr(0), 2, expect_flush);
  qa->post_send(bytes_of(msg), 3, expect_flush);
  sched.run();
  EXPECT_EQ(flushed, 3);
}

TEST_F(FabricTest, ConnectionCountRaisesPerOpCost) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;

  const std::string msg(16, 'x');
  Time first_commit = 0;
  b.mr->set_write_hook([&](std::uint64_t, std::uint32_t) { first_commit = sched.now(); });
  qa->post_write(bytes_of(msg), b.mr->addr(0));
  sched.run();

  // Blow up the QP count past the threshold, then measure again.
  for (std::uint32_t i = 0; i < fabric.cost().qp_penalty_threshold + 200; ++i) {
    fabric.connect(a.node->id(), b.node->id());
  }
  const Time start = sched.now();
  Time second_commit = 0;
  b.mr->set_write_hook([&](std::uint64_t, std::uint32_t) { second_commit = sched.now(); });
  qa->post_write(bytes_of(msg), b.mr->addr(0));
  sched.run();
  EXPECT_GT(second_commit - start, first_commit);
}

// ------------------------------------------------------------ TCP model

TEST_F(FabricTest, TcpDeliversWithKernelLatency) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [ca, cb] = fabric.tcp_connect(a.node->id(), b.node->id());

  std::string received;
  Time delivered = 0;
  cb->set_handler([&](std::vector<std::byte> data) {
    received = string_of(data);
    delivered = sched.now();
  });
  const std::string msg = "over tcp";
  const Time sent_done = ca->send(bytes_of(msg));
  EXPECT_EQ(sent_done, fabric.cost().tcp_kernel_cost);
  sched.run();
  EXPECT_EQ(received, msg);
  EXPECT_GE(delivered, fabric.cost().tcp_latency);
  EXPECT_EQ(fabric.stats().tcp_messages, 1u);
}

TEST_F(FabricTest, TcpPreservesMessageOrder) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [ca, cb] = fabric.tcp_connect(a.node->id(), b.node->id());
  std::vector<std::string> received;
  cb->set_handler([&](std::vector<std::byte> data) { received.push_back(string_of(data)); });
  // Big message then small: stream semantics forbid reordering.
  const std::string big(1 << 20, 'B');
  const std::string small = "s";
  ca->send(bytes_of(big));
  ca->send(bytes_of(small));
  sched.run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].size(), big.size());
  EXPECT_EQ(received[1], small);
}

TEST_F(FabricTest, TcpToDeadNodeDropsSilently) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [ca, cb] = fabric.tcp_connect(a.node->id(), b.node->id());
  bool got = false;
  cb->set_handler([&](std::vector<std::byte>) { got = true; });
  fabric.kill_node(b.node->id());
  const std::string msg = "lost";
  ca->send(bytes_of(msg));
  sched.run();
  EXPECT_FALSE(got);
}

TEST_F(FabricTest, TcpIsMuchSlowerThanRdmaWriteForSmallMessages) {
  auto a = make_endpoint("a");
  auto b = make_endpoint("b");
  auto [qa, qb] = fabric.connect(a.node->id(), b.node->id());
  (void)qb;
  auto [ca, cb] = fabric.tcp_connect(a.node->id(), b.node->id());

  Time rdma_commit = 0;
  b.mr->set_write_hook([&](std::uint64_t, std::uint32_t) { rdma_commit = sched.now(); });
  Time tcp_commit = 0;
  cb->set_handler([&](std::vector<std::byte>) { tcp_commit = sched.now(); });

  const std::string msg(48, 'm');
  qa->post_write(bytes_of(msg), b.mr->addr(0));
  ca->send(bytes_of(msg));
  sched.run();
  EXPECT_GT(tcp_commit, rdma_commit * 10) << "TCP should be >10x slower";
}

// ------------------------------------------------------------ loopback

TEST_F(FabricTest, SameNodeLoopbackWorks) {
  auto a = make_endpoint("a");
  auto [q1, q2] = fabric.connect(a.node->id(), a.node->id());
  (void)q2;
  const std::string msg = "loop";
  q1->post_write(bytes_of(msg), a.mr->addr(8));
  sched.run();
  EXPECT_EQ(std::memcmp(a.memory.data() + 8, msg.data(), msg.size()), 0);
  // Loopback still burns the shared NIC: both tx and rx engines were used.
  EXPECT_GT(a.node->nic().tx_ops, 0u);
  EXPECT_GT(a.node->nic().rx_ops, 0u);
}

}  // namespace
}  // namespace hydra::fabric
