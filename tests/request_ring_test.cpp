// Multi-slot request-ring tests: window=1 equivalence with the closed-loop
// wire contract, slot wraparound, out-of-order response completion,
// per-slot timeout salvage + retry, and the pipelining/doorbell-batching
// payoff. The out-of-order and timeout cases use a hand-rolled fake shard
// (a memory region + QP, no server logic) so the test controls exactly
// when and in what order responses land.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.hpp"
#include "common/keygen.hpp"
#include "fabric/fabric.hpp"
#include "hydradb/hydra_cluster.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"

namespace hydra {
namespace {

// ------------------------------------------------------------ golden run

struct GoldenResult {
  Time now = 0;
  std::uint64_t c0_gets = 0, c0_puts = 0, c1_gets = 0, c1_puts = 0;
  double c0_get_mean = 0, c0_put_mean = 0, c1_get_mean = 0, c1_put_mean = 0;
  Duration c0_get_max = 0, c1_get_max = 0;
  std::uint64_t shard_gets = 0, shard_puts = 0, shard_responses = 0;
  Duration shard_busy = 0;
  std::uint64_t batched = 0;
  std::uint32_t max_in_flight = 0;
};

/// A small deterministic mixed GET/PUT trace over 2 clients and 1 shard on
/// the message path, identical to the run used to capture the pre-ring
/// seed's behaviour.
GoldenResult run_golden(std::uint32_t window) {
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.enable_swat = false;
  opts.client_rdma_read = false;
  opts.client_template.window = window;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  for (int i = 0; i < 16; ++i)
    cluster.direct_load(format_key(static_cast<std::uint64_t>(i)), "seed-value");

  int done = 0;
  for (int c = 0; c < 2; ++c) {
    auto* cl = cluster.clients()[static_cast<std::size_t>(c)];
    for (int i = 0; i < 24; ++i) {
      const auto k = format_key(static_cast<std::uint64_t>(i % 16));
      if (i % 3 == 0) {
        cl->put(k, "v" + std::to_string(i), [&](Status) { ++done; });
      } else {
        cl->get(k, [&](Status, std::string_view) { ++done; });
      }
    }
  }
  while (done < 48 && cluster.scheduler().step()) {
  }

  GoldenResult g;
  g.now = cluster.scheduler().now();
  const auto& s0 = cluster.clients()[0]->stats();
  const auto& s1 = cluster.clients()[1]->stats();
  g.c0_gets = s0.gets;
  g.c0_puts = s0.puts;
  g.c1_gets = s1.gets;
  g.c1_puts = s1.puts;
  g.c0_get_mean = s0.get_latency.mean();
  g.c0_put_mean = s0.put_latency.mean();
  g.c1_get_mean = s1.get_latency.mean();
  g.c1_put_mean = s1.put_latency.mean();
  g.c0_get_max = s0.get_latency.max();
  g.c1_get_max = s1.get_latency.max();
  g.max_in_flight = std::max(s0.max_in_flight, s1.max_in_flight);
  const auto& sh = cluster.shard(0)->stats();
  g.shard_gets = sh.gets;
  g.shard_puts = sh.puts;
  g.shard_responses = sh.responses;
  g.shard_busy = sh.busy_time;
  g.batched = sh.batched_responses;
  return g;
}

// The exact numbers the pre-ring seed produced on this trace (captured by
// running the identical scenario against the seed build). window=1 must
// reproduce the closed-loop wire behaviour event-for-event.
TEST(RequestRing, WindowOneMatchesSeedClosedLoopExactly) {
  const GoldenResult g = run_golden(1);
  EXPECT_EQ(g.now, 54654u);
  EXPECT_EQ(g.c0_gets, 16u);
  EXPECT_EQ(g.c0_puts, 8u);
  EXPECT_EQ(g.c1_gets, 16u);
  EXPECT_EQ(g.c1_puts, 8u);
  EXPECT_DOUBLE_EQ(g.c0_get_mean, 29131.5);
  EXPECT_DOUBLE_EQ(g.c0_put_mean, 26058.75);
  EXPECT_DOUBLE_EQ(g.c1_get_mean, 30271.5);
  EXPECT_DOUBLE_EQ(g.c1_put_mean, 27198.75);
  EXPECT_EQ(g.c0_get_max, 53514u);
  EXPECT_EQ(g.c1_get_max, 54654u);
  EXPECT_EQ(g.shard_gets, 32u);
  EXPECT_EQ(g.shard_puts, 16u);
  EXPECT_EQ(g.shard_responses, 48u);
  EXPECT_EQ(g.shard_busy, 37786u);
  EXPECT_EQ(g.max_in_flight, 1u);
  EXPECT_EQ(g.batched, 0u);  // one request per sweep: nothing to batch
}

TEST(RequestRing, WindowEightPipelinesAndBatchesDoorbells) {
  const GoldenResult g1 = run_golden(1);
  const GoldenResult g8 = run_golden(8);
  // Same work completed...
  EXPECT_EQ(g8.shard_responses, 48u);
  EXPECT_EQ(g8.c0_gets + g8.c1_gets, 32u);
  EXPECT_EQ(g8.c0_puts + g8.c1_puts, 16u);
  // ...but overlapped: the run finishes far sooner, the ring actually
  // fills, and most responses share a sweep's doorbell, which also trims
  // the shard's per-op CPU time.
  EXPECT_LT(g8.now, (g1.now * 3) / 4);
  EXPECT_EQ(g8.max_in_flight, 8u);
  EXPECT_GT(g8.batched, 20u);
  EXPECT_LT(g8.shard_busy, g1.shard_busy);
}

TEST(RequestRing, SlotsWrapAroundManyTimes) {
  // 64 ops through a window of 2: each ring slot is reused ~16 times and
  // the overflow queue drains in arrival order.
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.enable_swat = false;
  opts.client_rdma_read = false;
  opts.client_template.window = 2;
  opts.shard_template.store.arena_bytes = 8 << 20;
  db::HydraCluster cluster(opts);

  auto* c = cluster.clients()[0];
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    c->put(format_key(static_cast<std::uint64_t>(i)), "v", [&](Status s) {
      EXPECT_EQ(s, Status::kOk);
      ++completed;
    });
  }
  cluster.run_for(50 * kMillisecond);
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(c->stats().puts, 64u);
  EXPECT_EQ(c->stats().max_in_flight, 2u);
  EXPECT_EQ(c->stats().timeouts, 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(cluster.get(format_key(static_cast<std::uint64_t>(i))).has_value());
  }
}

// ------------------------------------------------------------ fake shard

/// Test double for the server side of one connection: owns the request
/// ring, records arriving requests, and lets the test write response
/// frames into the client's response ring in any order it likes.
class FakeShard {
 public:
  FakeShard(sim::Scheduler& sched, fabric::Fabric& fabric, NodeId server_node)
      : sched_(sched), fabric_(fabric), node_(server_node) {}

  /// Wires a Client to this fake: grants the full requested window.
  client::Client::Connector connector() {
    return [this](ShardId, client::Client& self, fabric::RemoteAddr resp_slot,
                  std::uint32_t resp_slot_bytes, std::uint32_t window,
                  client::ShardConnection* out) {
      if (refuse_connections) return false;
      ++accepts;
      resp_base_ = resp_slot;
      resp_bytes_ = resp_slot_bytes;
      ring_.assign(static_cast<std::size_t>(window) * kSlotBytes, std::byte{0});
      ring_mr_ = fabric_.node(node_).register_memory(ring_);
      ring_mr_->set_write_hook([this](std::uint64_t offset, std::uint32_t) {
        const std::uint32_t slot = proto::ring_slot_of(offset, kSlotBytes);
        const std::span<std::byte> span{ring_.data() + proto::ring_slot_offset(slot, kSlotBytes),
                                        kSlotBytes};
        if (proto::probe_frame(span) != proto::FrameState::kReady) return;
        auto req = proto::decode_request(proto::frame_payload(span));
        proto::clear_frame(span);
        ASSERT_TRUE(req.has_value());
        requests.push_back({*req, slot});
      });
      auto [cq, sq] = fabric_.connect(self.node(), node_);
      sq_ = sq;
      out->qp = cq;
      out->req_slot = ring_mr_->addr(0);
      out->req_slot_bytes = kSlotBytes;
      out->window = window;
      out->send_recv = false;
      return true;
    };
  }

  /// Writes a response for `requests[i]` into the matching resp-ring slot.
  void respond(std::size_t i, Status status = Status::kOk,
               const std::string& value = {}) {
    const auto& [req, slot] = requests.at(i);
    proto::Response resp;
    resp.req_id = req.req_id;
    resp.status = status;
    resp.value = value;
    const auto payload = proto::encode_response(resp);
    std::vector<std::byte> frame(proto::frame_size(payload.size()));
    proto::encode_frame(frame, payload);
    sq_->post_write(frame, fabric::RemoteAddr{resp_base_.rkey,
                                              resp_base_.offset +
                                                  proto::ring_slot_offset(slot, resp_bytes_)});
  }

  struct Arrived {
    proto::Request req;
    std::uint32_t slot = 0;
  };
  std::vector<Arrived> requests;
  int accepts = 0;
  bool refuse_connections = false;

 private:
  static constexpr std::uint32_t kSlotBytes = 4096;
  sim::Scheduler& sched_;
  fabric::Fabric& fabric_;
  NodeId node_;
  std::vector<std::byte> ring_;
  fabric::MemoryRegion* ring_mr_ = nullptr;
  fabric::QueuePair* sq_ = nullptr;
  fabric::RemoteAddr resp_base_{};
  std::uint32_t resp_bytes_ = 0;
};

class FakeShardTest : public ::testing::Test {
 protected:
  FakeShardTest() {
    server_node = fabric.add_node("server").id();
    client_node = fabric.add_node("client").id();
    fake = std::make_unique<FakeShard>(sched, fabric, server_node);
  }

  std::unique_ptr<client::Client> make_client(client::ClientConfig cfg) {
    cfg.use_rdma_read = false;
    auto c = std::make_unique<client::Client>(sched, fabric, client_node, cfg);
    c->set_resolver([](std::uint64_t) { return ShardId{0}; });
    c->set_connector(fake->connector());
    return c;
  }

  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  NodeId server_node = 0;
  NodeId client_node = 0;
  std::unique_ptr<FakeShard> fake;
};

TEST_F(FakeShardTest, OutOfOrderResponsesCompleteTheRightOps) {
  client::ClientConfig cfg;
  cfg.window = 4;
  auto c = make_client(cfg);

  std::vector<std::string> got(3);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    c->get("key-" + std::to_string(i), [&, i](Status s, std::string_view v) {
      EXPECT_EQ(s, Status::kOk);
      got[static_cast<std::size_t>(i)] = std::string(v);
      ++done;
    });
  }
  sched.run_until(sched.now() + 100 * kMicrosecond);
  ASSERT_EQ(fake->requests.size(), 3u);
  // Distinct ring slots, ascending req_ids.
  EXPECT_EQ(fake->requests[0].slot, 0u);
  EXPECT_EQ(fake->requests[1].slot, 1u);
  EXPECT_EQ(fake->requests[2].slot, 2u);

  // Answer in reverse order: each response must find its own op by req_id.
  fake->respond(2, Status::kOk, "value-2");
  fake->respond(1, Status::kOk, "value-1");
  fake->respond(0, Status::kOk, "value-0");
  sched.run_until(sched.now() + 100 * kMicrosecond);

  EXPECT_EQ(done, 3);
  EXPECT_EQ(got[0], "value-0");
  EXPECT_EQ(got[1], "value-1");
  EXPECT_EQ(got[2], "value-2");
  // The first two completions were not the oldest in-flight request.
  EXPECT_EQ(c->stats().ooo_responses, 2u);
  EXPECT_EQ(c->stats().timeouts, 0u);
}

TEST_F(FakeShardTest, TimeoutSalvagesAllSlotsAndRetriesSucceed) {
  client::ClientConfig cfg;
  cfg.window = 4;
  cfg.request_timeout = 200 * kMicrosecond;
  auto c = make_client(cfg);

  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    c->get("key-" + std::to_string(i),
           [&](Status s, std::string_view) { ok += s == Status::kOk; });
  }
  sched.run_until(sched.now() + 100 * kMicrosecond);
  ASSERT_EQ(fake->requests.size(), 4u);  // all four slots in flight

  // Answer nothing: the first slot's timeout fires, salvages every
  // in-flight op, drops the connection and reissues over a fresh one.
  // (250 us = one timeout + the retry backoff, but short of a second round.)
  sched.run_until(sched.now() + 250 * kMicrosecond);
  EXPECT_EQ(c->stats().timeouts, 1u);  // one salvage, not four
  EXPECT_EQ(c->stats().retries, 4u);
  ASSERT_EQ(fake->requests.size(), 8u);  // 4 originals + 4 reissues
  EXPECT_EQ(fake->accepts, 2);

  // Serve the retries; every op must complete Ok with no failures.
  for (std::size_t i = 4; i < 8; ++i) fake->respond(i);
  sched.run_until(sched.now() + 100 * kMicrosecond);
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(c->stats().failures, 0u);
}

TEST_F(FakeShardTest, RetriesExhaustToTimeoutStatus) {
  client::ClientConfig cfg;
  cfg.window = 2;
  cfg.request_timeout = 200 * kMicrosecond;
  cfg.max_retries = 2;
  auto c = make_client(cfg);

  int timed_out = 0;
  c->get("k", [&](Status s, std::string_view) { timed_out += s == Status::kTimeout; });
  sched.run_until(sched.now() + 50 * kMicrosecond);
  fake->refuse_connections = true;  // no shard to retry against
  sched.run();
  EXPECT_EQ(timed_out, 1);
  EXPECT_GT(c->stats().timeouts, 0u);
  EXPECT_GT(c->stats().failures, 0u);
}

TEST_F(FakeShardTest, QueueBeyondWindowDrainsInOrder) {
  client::ClientConfig cfg;
  cfg.window = 2;
  auto c = make_client(cfg);

  for (int i = 0; i < 6; ++i) {
    c->get("key-" + std::to_string(i), [](Status, std::string_view) {});
  }
  sched.run_until(sched.now() + 100 * kMicrosecond);
  // Only the window may be on the wire; the rest wait client-side.
  ASSERT_EQ(fake->requests.size(), 2u);
  EXPECT_EQ(c->stats().max_in_flight, 2u);

  // Completing slot 0 admits exactly one queued op, into the freed slot.
  fake->respond(0);
  sched.run_until(sched.now() + 100 * kMicrosecond);
  ASSERT_EQ(fake->requests.size(), 3u);
  EXPECT_EQ(fake->requests[2].req.key, "key-2");
  EXPECT_EQ(fake->requests[2].slot, 0u);
}

}  // namespace
}  // namespace hydra
