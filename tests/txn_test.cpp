// Transaction-layer invariant suite (DESIGN.md §11): TxnHeader codec
// round-trips, direct 2PL unit tests against a live cluster, the scripted +
// seeded-random txn-kill-mid-commit chaos sweeps, abort-order properties
// for both lock modes, and the golden-determinism gate keeping txn-off
// clusters byte-identical to the seed.
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hydradb/hydra_cluster.hpp"
#include "proto/messages.hpp"
#include "txn/txn.hpp"
#include "txn/txn_chaos.hpp"

namespace hydra {
namespace {

using txn::TxnChaosRunner;
using txn::TxnClient;
using txn::TxnOptions;
using txn::TxnRunReport;
using txn::TxnSchedule;

std::string describe(const TxnRunReport& r) {
  std::string out;
  for (const auto& v : r.violations) out += "  " + v + "\n";
  out += "--- history ---\n" + r.history;
  return out;
}

const TxnSchedule& scripted_by_name(const std::string& name) {
  static const auto all = TxnSchedule::scripted();
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no scripted txn schedule named " << name;
  return all.front();
}

// ------------------------------------------------------------- wire codec

TEST(TxnCodec, RoundTripsHeaderAndOps) {
  proto::TxnCommit group;
  group.hdr.txn_id = 0x0123456789ABCDEFULL;
  group.hdr.mode = proto::TxnMode::kWaitDie;
  group.hdr.epoch = 42;
  group.ops.push_back({proto::MsgType::kPut, "alpha", "value-1"});
  group.ops.push_back({proto::MsgType::kRemove, "beta", ""});
  group.ops.push_back({proto::MsgType::kPut, "", "empty-key-payload"});
  group.hdr.op_count = static_cast<std::uint32_t>(group.ops.size());

  const auto bytes = proto::encode_txn_commit(group);
  const auto back = proto::decode_txn_commit(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->hdr.txn_id, group.hdr.txn_id);
  EXPECT_EQ(back->hdr.mode, proto::TxnMode::kWaitDie);
  EXPECT_EQ(back->hdr.epoch, 42u);
  ASSERT_EQ(back->ops.size(), 3u);
  EXPECT_EQ(back->ops[0].op, proto::MsgType::kPut);
  EXPECT_EQ(back->ops[0].key, "alpha");
  EXPECT_EQ(back->ops[0].value, "value-1");
  EXPECT_EQ(back->ops[1].op, proto::MsgType::kRemove);
  EXPECT_EQ(back->ops[1].key, "beta");
  EXPECT_EQ(back->ops[2].key, "");
  EXPECT_EQ(back->ops[2].value, "empty-key-payload");
}

TEST(TxnCodec, RoundTripsEmptyGroup) {
  proto::TxnCommit group;
  group.hdr.txn_id = 7;
  const auto back = proto::decode_txn_commit(proto::encode_txn_commit(group));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->hdr.txn_id, 7u);
  EXPECT_TRUE(back->ops.empty());
}

// A torn frame may truncate the payload at any byte; every strict prefix
// must be rejected without crashing, and so must trailing garbage (the
// decoder demands exact consumption).
TEST(TxnCodec, RejectsTruncationAndTrailingGarbage) {
  proto::TxnCommit group;
  group.hdr.txn_id = 99;
  group.ops.push_back({proto::MsgType::kPut, "k", "v"});
  group.hdr.op_count = 1;
  const auto bytes = proto::encode_txn_commit(group);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(proto::decode_txn_commit({bytes.data(), len}).has_value())
        << "prefix length " << len;
  }
  auto padded = bytes;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(proto::decode_txn_commit(padded).has_value());
}

// An op_count no frame of this size could carry must be rejected before it
// sizes an allocation.
TEST(TxnCodec, RejectsImpossibleOpCount) {
  proto::TxnCommit group;
  group.hdr.txn_id = 1;
  auto bytes = proto::encode_txn_commit(group);
  // op_count lives in bytes [17, 21); overwrite with a huge value.
  bytes[17] = std::byte{0xFF};
  bytes[18] = std::byte{0xFF};
  bytes[19] = std::byte{0xFF};
  bytes[20] = std::byte{0x7F};
  EXPECT_FALSE(proto::decode_txn_commit(bytes).has_value());
}

// --------------------------------------------- direct TxnClient unit tests

struct TxnHarness {
  db::HydraCluster cluster;
  TxnClient client;

  explicit TxnHarness(TxnOptions opts = {}, std::uint32_t lock_words = 64,
                      int shards = 2)
      : cluster(make_opts(lock_words, shards)),
        client(cluster.scheduler(), *cluster.clients()[0], opts,
               TxnClient::make_id_source()) {
    client.set_resolver([this](std::uint64_t h) { return cluster.ring().owner(h); });
    client.set_epoch_source([this] { return cluster.routing_epoch(); });
  }

  static db::ClusterOptions make_opts(std::uint32_t lock_words, int shards) {
    db::ClusterOptions opts;
    opts.server_nodes = shards;
    opts.shards_per_node = 1;
    opts.total_shards = shards;
    opts.client_nodes = 1;
    opts.clients_per_node = 1;
    opts.replicas = 1;
    opts.shard_template.txn_lock_words = lock_words;
    return opts;
  }

  /// Runs one transaction to completion and returns (status, reads).
  std::pair<Status, std::vector<std::string>> run(std::vector<proto::TxnOp> ops) {
    std::optional<Status> status;
    std::vector<std::string> reads;
    client.run(std::move(ops), [&](Status s, std::vector<std::string> r) {
      status = s;
      reads = std::move(r);
    });
    cluster.run_for(10 * kSecond);
    EXPECT_TRUE(status.has_value()) << "transaction wedged";
    return {status.value_or(Status::kTimeout), std::move(reads)};
  }

  /// Post-txn invariant: no lock word left held on any shard.
  void expect_no_held_locks() {
    for (ShardId id = 0; id < static_cast<ShardId>(cluster.shard_count()); ++id) {
      server::Shard* sh = cluster.shard(id);
      if (sh == nullptr) continue;
      for (std::uint32_t w = 0; w < sh->lock_word_count(); ++w) {
        EXPECT_EQ(sh->lock_word(w), 0u) << "shard " << id << " word " << w;
      }
    }
  }
};

TEST(TxnClientUnit, MultiKeyCommitIsFullyVisible) {
  TxnHarness h;
  auto [status, reads] = h.run({{proto::MsgType::kPut, "txn-a", "1"},
                                {proto::MsgType::kPut, "txn-b", "2"},
                                {proto::MsgType::kPut, "txn-c", "3"}});
  EXPECT_EQ(status, Status::kOk);
  EXPECT_TRUE(reads.empty());
  EXPECT_EQ(*h.cluster.get("txn-a"), "1");
  EXPECT_EQ(*h.cluster.get("txn-b"), "2");
  EXPECT_EQ(*h.cluster.get("txn-c"), "3");
  h.expect_no_held_locks();
  EXPECT_EQ(h.client.stats().committed, 1u);
  EXPECT_GT(h.client.stats().lock_cas, 0u);
}

TEST(TxnClientUnit, ReadSetAlignsWithGetOpsAndRemoveApplies) {
  TxnHarness h;
  ASSERT_EQ(h.cluster.put("seen", "old"), Status::kOk);
  ASSERT_EQ(h.cluster.put("gone", "bye"), Status::kOk);
  auto [status, reads] = h.run({{proto::MsgType::kGet, "seen", ""},
                                {proto::MsgType::kPut, "fresh", "new"},
                                {proto::MsgType::kGet, "missing", ""},
                                {proto::MsgType::kRemove, "gone", ""}});
  EXPECT_EQ(status, Status::kOk);
  ASSERT_EQ(reads.size(), 2u);  // one slot per kGet, in op order
  EXPECT_EQ(reads[0], "old");
  EXPECT_EQ(reads[1], "");  // missing key reads back empty
  EXPECT_EQ(*h.cluster.get("fresh"), "new");
  EXPECT_FALSE(h.cluster.get("gone").has_value());
  h.expect_no_held_locks();
}

TEST(TxnClientUnit, ReadOnlyTransactionCommitsWithoutWrites) {
  TxnHarness h;
  ASSERT_EQ(h.cluster.put("r", "x"), Status::kOk);
  auto [status, reads] = h.run({{proto::MsgType::kGet, "r", ""}});
  EXPECT_EQ(status, Status::kOk);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0], "x");
  h.expect_no_held_locks();
}

TEST(TxnClientUnit, EmptyTransactionIsOk) {
  TxnHarness h;
  auto [status, reads] = h.run({});
  EXPECT_EQ(status, Status::kOk);
  EXPECT_TRUE(reads.empty());
}

// A cluster whose shards register no lock arena cannot host transactions:
// the failure must be terminal and typed, not an endless retry.
TEST(TxnClientUnit, DisabledArenaFailsTerminally) {
  TxnHarness h(TxnOptions{}, /*lock_words=*/0);
  auto [status, reads] = h.run({{proto::MsgType::kPut, "k", "v"}});
  EXPECT_EQ(status, Status::kInvalidArgument);
  EXPECT_FALSE(h.cluster.get("k").has_value());  // nothing leaked through
}

// The golden-determinism gate: with txn_lock_words at its default of 0 (the
// seed configuration), no lock arena is registered -- so the rkey sequence,
// and with it every history byte of a txn-off run, matches the pre-txn
// seed. A run with the arena on must not disturb the data plane either.
TEST(TxnClientUnit, TxnOffClustersRegisterNoArena) {
  db::ClusterOptions opts = TxnHarness::make_opts(/*lock_words=*/0, /*shards=*/2);
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);
  for (ShardId id = 0; id < static_cast<ShardId>(cluster.shard_count()); ++id) {
    EXPECT_EQ(cluster.shard(id)->lock_word_count(), 0u);
  }
  EXPECT_EQ(cluster.fabric().stats().rdma_atomics, 0u);
}

// --------------------------------------------------------------- the sweep

// Every scripted family (baselines, contention, the txn-kill-mid-commit
// kills, torn/dropped atomics, mux death, migration) across 6 seeds.
TEST(TxnChaosSweep, ScriptedFamilies) {
  for (const auto& schedule : TxnSchedule::scripted()) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const TxnRunReport r = TxnChaosRunner::run(schedule, seed);
      EXPECT_TRUE(r.passed()) << schedule.name << " seed " << seed << ":\n"
                              << describe(r);
      EXPECT_GT(r.acked, 0u) << schedule.name << " seed " << seed;
    }
  }
}

// Seeded-random compositions of the same fault alphabet; 120 by default
// (>= the 100-run acceptance bar). HYDRA_TXN_RANDOM_RUNS scales the sweep
// (tier1.sh widens it for --txn and shortens it under sanitizers).
TEST(TxnChaosSweep, RandomFamilies) {
  int runs = 120;
  if (const char* env = std::getenv("HYDRA_TXN_RANDOM_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }
  for (int i = 1; i <= runs; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const TxnSchedule schedule = TxnSchedule::random(seed);
    const TxnRunReport r = TxnChaosRunner::run(schedule, seed);
    EXPECT_TRUE(r.passed()) << schedule.name << " seed " << seed << ":\n"
                            << describe(r);
  }
}

// Identical (schedule, seed) must reproduce the run byte-for-byte; the
// trace plane must not perturb it.
TEST(TxnDeterminism, SameSeedSameHistory) {
  const auto& scripted = scripted_by_name("txn-kill-mid-commit-no-wait");
  const TxnRunReport a = TxnChaosRunner::run(scripted, 7);
  const TxnRunReport b = TxnChaosRunner::run(scripted, 7);
  EXPECT_EQ(a.history, b.history);

  obs::Plane plane;
  const TxnRunReport c = TxnChaosRunner::run(scripted, 7, &plane);
  EXPECT_EQ(a.history, c.history);

  const TxnSchedule random = TxnSchedule::random(42);
  const TxnRunReport d = TxnChaosRunner::run(random, 42);
  const TxnRunReport e = TxnChaosRunner::run(random, 42);
  EXPECT_EQ(d.history, e.history);
  EXPECT_NE(a.history, d.history);  // different schedules diverge
}

// ------------------------------------------------ abort-order properties

// NO_WAIT must never wait: every conflict is an immediate die. The runner
// additionally folds any probe-observed wait into a violation, so passed()
// covers the ordering; the stat assertions pin it explicitly.
TEST(TxnProperty, NoWaitNeverWaits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TxnRunReport r =
        TxnChaosRunner::run(scripted_by_name("txn-contention-no-wait"), seed);
    EXPECT_TRUE(r.passed()) << "seed " << seed << ":\n" << describe(r);
    EXPECT_EQ(r.waits, 0u) << "seed " << seed;
    EXPECT_EQ(r.died, r.conflicts) << "seed " << seed;
  }
}

// WAIT_DIE must let older transactions wait out younger holders (the probe
// flags any older-dies-for-younger as a violation) -- across a seed sweep
// of the hot-key schedule the wait path must actually exercise.
TEST(TxnProperty, WaitDieOlderWaitsYoungerDies) {
  std::uint64_t total_conflicts = 0;
  std::uint64_t total_waits = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TxnRunReport r =
        TxnChaosRunner::run(scripted_by_name("txn-contention-wait-die"), seed);
    EXPECT_TRUE(r.passed()) << "seed " << seed << ":\n" << describe(r);
    total_conflicts += r.conflicts;
    total_waits += r.waits;
  }
  EXPECT_GT(total_conflicts, 0u) << "contention schedule produced no conflicts";
  EXPECT_GT(total_waits, 0u) << "WAIT_DIE never exercised its wait path";
}

// ------------------------------------------------- one regression per bug

// The tentpole family: primary killed between lock-acquire and unlock. No
// acked transaction may be partially visible after failover, and the
// promoted arena must come up with no lock word held.
TEST(TxnRegression, KillMidCommitPrimary) {
  for (const char* name :
       {"txn-kill-mid-commit-no-wait", "txn-kill-mid-commit-wait-die"}) {
    const TxnRunReport r = TxnChaosRunner::run(scripted_by_name(name), 1);
    EXPECT_TRUE(r.passed()) << name << ":\n" << describe(r);
    EXPECT_GE(r.failovers, 1u) << name;
    EXPECT_GT(r.acked, 0u) << name;
    EXPECT_EQ(r.lock_leaks, 0u) << name;
  }
}

// Primary kill while SWAT is itself missing a member: the failover arrives
// late (leadership gap) but the commit invariants must hold across it.
TEST(TxnRegression, KillMidCommitDuringSwatGap) {
  const TxnRunReport r =
      TxnChaosRunner::run(scripted_by_name("txn-kill-mid-commit-swat-gap"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u);
}

// A replica death mid-commit: the commit's replication barrier must absorb
// the loss without a failover and without wedging any callback.
TEST(TxnRegression, SecondaryDeathMidCommitNeverWedges) {
  const TxnRunReport r =
      TxnChaosRunner::run(scripted_by_name("txn-kill-secondary-mid-commit"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.wedged, 0u);
  EXPECT_EQ(r.failovers, 0u) << describe(r);
}

// Dropped and torn lock-arena atomics: a lock CAS that never executed (or
// executed but lost its completion) must neither wedge the transaction nor
// leak the word held -- the maybe-held release discipline covers both.
TEST(TxnRegression, TornAndDroppedLockCas) {
  for (const char* name :
       {"txn-drop-lock-cas", "txn-tear-lock-cas", "txn-drop-unlock-cas"}) {
    const TxnRunReport r = TxnChaosRunner::run(scripted_by_name(name), 1);
    EXPECT_TRUE(r.passed()) << name << ":\n" << describe(r);
    EXPECT_EQ(r.wedged, 0u) << name;
    EXPECT_EQ(r.lock_leaks, 0u) << name;
    EXPECT_GE(r.torn_atomics + r.dropped_atomics, 1u) << name;
  }
}

// The shared mux QP dies with lock CAS + commits in flight; endpoints must
// tear down, reopen lazily and retry -- QP death is not process death.
TEST(TxnRegression, MuxChannelKillRecovers) {
  const TxnRunReport r =
      TxnChaosRunner::run(scripted_by_name("txn-mux-channel-kill"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.wedged, 0u);
  EXPECT_EQ(r.failovers, 0u) << describe(r);
}

// Heartbeat suppression past the session timeout: the fenced primary's
// epoch moves on, and every commit locked under the stale epoch must be
// refused whole and rolled forward -- never half-applied.
TEST(TxnRegression, HeartbeatFenceRollsForward) {
  const TxnRunReport r =
      TxnChaosRunner::run(scripted_by_name("txn-heartbeat-fence"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u) << describe(r);
}

// A live migration overlapping the workload: commits racing the ownership
// handoff are fenced by epoch + owner filters and must retry onto the new
// owner; the migration itself must still complete.
TEST(TxnRegression, MigrationMidTxnFencesCommits) {
  const TxnRunReport r =
      TxnChaosRunner::run(scripted_by_name("txn-migrate-mid-txn"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_TRUE(r.migration_completed) << describe(r);
}

}  // namespace
}  // namespace hydra
