// Unit tests for hydra_common: hashing, RNG, key generators, histogram, ring.
#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/keygen.hpp"
#include "common/rng.hpp"
#include "common/spsc_ring.hpp"
#include "common/types.hpp"

namespace hydra {
namespace {

// ---------------------------------------------------------------- hashing

TEST(Hash, DeterministicAndInputSensitive) {
  const std::string a = "user000000000001";
  const std::string b = "user000000000002";
  EXPECT_EQ(hash_key(a), hash_key(a));
  EXPECT_NE(hash_key(a), hash_key(b));
  EXPECT_NE(hash_key(""), hash_key(std::string_view("\0", 1)));
}

TEST(Hash, CoversAllLengthBranches) {
  // Exercise <4, <8, 8..31 and >=32 byte paths and verify no collisions in
  // a small corpus of related strings.
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 100; ++len) {
    s.push_back(static_cast<char>('a' + len % 26));
    ASSERT_TRUE(seen.insert(hash_bytes(s.data(), s.size())).second)
        << "collision at length " << len;
  }
}

TEST(Hash, BucketDistributionIsRoughlyUniform) {
  constexpr int kBuckets = 64;
  constexpr int kKeys = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++counts[hash_key(format_key(static_cast<std::uint64_t>(i))) % kBuckets];
  }
  const int expected = kKeys / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected / 2);
    EXPECT_LT(c, expected * 2);
  }
}

TEST(Hash, SignatureUsesHighBitsIndependentOfBucketBits) {
  // Two hashes agreeing in the low 16 bits should usually have different
  // signatures; construct a couple and check the extraction logic itself.
  EXPECT_EQ(key_signature(0xABCD000000000000ULL), 0xABCD);
  EXPECT_EQ(key_signature(0x0000FFFFFFFFFFFFULL), 0x0000);
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t h0 = mix64(0x123456789ABCDEFULL);
  const std::uint64_t h1 = mix64(0x123456789ABCDEFULL ^ 1);
  const int flipped = __builtin_popcountll(h0 ^ h1);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

// ---------------------------------------------------------------- rng

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, UniformIsInUnitIntervalAndCentred) {
  Xoshiro256 rng(9);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

// ---------------------------------------------------------------- keygen

TEST(Keygen, FormatKeyIsFixedWidthAndUnique) {
  std::set<std::string> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::string k = format_key(i);
    EXPECT_EQ(k.size(), 16u);
    EXPECT_TRUE(keys.insert(std::move(k)).second);
  }
  EXPECT_EQ(format_key(5, 32).size(), 32u);
}

TEST(Keygen, SynthValueDeterministic) {
  EXPECT_EQ(synth_value(77), synth_value(77));
  EXPECT_NE(synth_value(77), synth_value(78));
  EXPECT_EQ(synth_value(1, 100).size(), 100u);
}

TEST(Keygen, UniformChooserCoversRange) {
  UniformChooser chooser(100);
  Xoshiro256 rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[chooser.next(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 250);
    EXPECT_LT(c, 1000);
  }
}

TEST(Keygen, ZipfianRankZeroIsMostPopular) {
  ZipfianChooser chooser(10000);
  Xoshiro256 rng(11);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[chooser.next(rng)];
  const auto most = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_EQ(most->first, 0u);
  // Theoretical P(rank 0) for theta=0.99, N=10000 is ~1/zeta ~ 9.5%.
  EXPECT_GT(most->second, 60000 * 0.095 * 0.8);
}

TEST(Keygen, ZipfianIsHeavilySkewed) {
  ScrambledZipfianChooser chooser(100000);
  Xoshiro256 rng(13);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[chooser.next(rng)];
  std::vector<int> freq;
  freq.reserve(counts.size());
  for (const auto& [k, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  // Top 1% of *touched* records should absorb a large share of requests.
  const std::size_t top = std::max<std::size_t>(1, freq.size() / 100);
  const long top_sum = std::accumulate(freq.begin(), freq.begin() + static_cast<long>(top), 0L);
  EXPECT_GT(static_cast<double>(top_sum) / kDraws, 0.30);
}

TEST(Keygen, ScrambledSpreadsHotKeysAcrossSpace) {
  ScrambledZipfianChooser chooser(100000);
  Xoshiro256 rng(17);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[chooser.next(rng)];
  // The two hottest records should NOT be adjacent small indices.
  std::vector<std::pair<int, std::uint64_t>> by_freq;
  for (const auto& [k, c] : counts) by_freq.emplace_back(c, k);
  std::sort(by_freq.rbegin(), by_freq.rend());
  ASSERT_GE(by_freq.size(), 2u);
  EXPECT_GT(by_freq[0].second + by_freq[1].second, 1000u);
}

class ZipfThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaSweep, HigherThetaMeansMoreSkew) {
  const double theta = GetParam();
  ZipfianChooser chooser(10000, theta);
  Xoshiro256 rng(19);
  int rank0 = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) rank0 += (chooser.next(rng) == 0);
  const double p0 = static_cast<double>(rank0) / kDraws;
  if (theta >= 0.99) {
    EXPECT_GT(p0, 0.05);
  } else {
    EXPECT_GT(p0, 0.001);
    EXPECT_LT(p0, 0.20);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep, ::testing::Values(0.5, 0.8, 0.99));

// Statistical pin for the zipfian-0.99 generator: observed rank
// frequencies over a fixed-seed run must match Gray et al. theory --
// P(rank r) = (1/(r+1)^theta) / zeta(n, theta) -- under a chi-squared
// goodness-of-fit check. The draw is deterministic (fixed seed), so this is
// a pin on the construction, not a flaky sampling test.
TEST(Keygen, ZipfianMatchesTheoreticalFrequencies) {
  constexpr std::uint64_t kRanks = 100;
  constexpr double kTheta = 0.99;
  constexpr int kDraws = 200000;
  ZipfianChooser chooser(kRanks, kTheta);
  Xoshiro256 rng(1234);
  std::vector<int> counts(kRanks, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t r = chooser.next(rng);
    ASSERT_LT(r, kRanks);
    ++counts[r];
  }
  double zetan = 0.0;
  for (std::uint64_t i = 1; i <= kRanks; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), kTheta);
  }
  double chi2 = 0.0;
  for (std::uint64_t r = 0; r < kRanks; ++r) {
    const double expected =
        kDraws / (std::pow(static_cast<double>(r + 1), kTheta) * zetan);
    ASSERT_GE(expected, 5.0);  // chi-squared validity: all cells populated
    const double d = counts[r] - expected;
    chi2 += d * d / expected;
  }
  // Gray et al.'s construction approximates the mid/tail ranks with a
  // continuous inverse-CDF, so the statistic carries a systematic floor on
  // top of sampling noise (measured ~0.0028 per draw at these parameters);
  // a broken alpha/eta/zeta lands orders of magnitude higher. Normalizing
  // by the draw count makes the bound independent of sample size.
  EXPECT_LT(chi2 / kDraws, 0.005) << "zipfian frequencies diverge from theory";
  // The head is exact in the construction: P(rank 0) = 1 / zeta.
  EXPECT_NEAR(static_cast<double>(counts[0]), kDraws / zetan, 0.05 * kDraws / zetan);
  // And popularity must decay with rank across the head of the curve.
  for (int r = 0; r + 1 < 8; ++r) {
    EXPECT_GT(counts[r], counts[r + 1]) << "rank " << r;
  }
}

// Same seed -> same sequence, for both the plain and scrambled variants;
// a different seed must diverge. Trace pre-generation and every bench
// (bench_txn's contention axis included) lean on this determinism.
TEST(Keygen, ZipfianSameSeedSameSequence) {
  ZipfianChooser a(1000), b(1000);
  ScrambledZipfianChooser sa(1000), sb(1000);
  Xoshiro256 ra(9), rb(9), rsa(9), rsb(9), rother(10);
  ZipfianChooser other(1000);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(ra), b.next(rb)) << "draw " << i;
    EXPECT_EQ(sa.next(rsa), sb.next(rsb)) << "draw " << i;
    diverged |= (a.next(ra) != other.next(rother));
    // keep the paired streams aligned after the extra draw above
    b.next(rb);
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical sequences";
}

// Regression pins for the two data-path edge cases the hot-key work flushed
// out. A single-record universe used to feed eta a division by
// 1 - zeta(2)/zeta(1) <= 0 (NaN ranks), and theta == 1.0 used to raise the
// Gray et al. inversion to the power 1/(1-theta) = inf. Both must now draw
// valid in-range indices forever.
TEST(Keygen, SingleRecordChooserAlwaysReturnsZero) {
  ZipfianChooser z(1);
  ZipfianChooser zh(1, 1.0);  // both degenerate paths at once
  ScrambledZipfianChooser s(1);
  HotspotChooser h(1);
  Xoshiro256 rng(23);
  EXPECT_EQ(z.record_count(), 1u);
  EXPECT_EQ(s.record_count(), 1u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(z.next(rng), 0u);
    EXPECT_EQ(zh.next(rng), 0u);
    EXPECT_EQ(s.next(rng), 0u);
    EXPECT_EQ(h.next(rng), 0u);
  }
}

TEST(Keygen, ThetaNearOneTakesHarmonicBranchAndStaysSkewed) {
  constexpr std::uint64_t kRanks = 10000;
  // theta == 1.0 exactly, and a value inside the epsilon window around it;
  // both must route through the harmonic-limit inversion (count^u) rather
  // than the alpha = 1/(1-theta) exponent.
  for (const double theta : {1.0, 1.0 - 1e-9}) {
    ZipfianChooser chooser(kRanks, theta);
    Xoshiro256 rng(29);
    std::vector<int> counts(kRanks, 0);
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t r = chooser.next(rng);
      ASSERT_LT(r, kRanks) << "theta " << theta;  // no NaN/inf casts
      ++counts[r];
    }
    // Harmonic zeta(10000) ~ 9.79, so P(rank 0) = 1/zeta ~ 10.2%.
    EXPECT_GT(counts[0], static_cast<int>(kDraws * 0.07)) << "theta " << theta;
    // Popularity still decays across the head of the curve.
    EXPECT_GT(counts[0], counts[1]) << "theta " << theta;
    EXPECT_GT(counts[1], counts[4]) << "theta " << theta;
  }
  // Just OUTSIDE the epsilon window the Gray inversion must still hold up
  // numerically (alpha ~ 1e5): every draw in range, head still hottest.
  ZipfianChooser edge(kRanks, 1.0 - 1e-5);
  Xoshiro256 rng(31);
  int rank0 = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t r = edge.next(rng);
    ASSERT_LT(r, kRanks);
    rank0 += (r == 0);
  }
  EXPECT_GT(rank0, 50000 * 0.07);
}

TEST(Keygen, HotspotRespectsFractions) {
  constexpr std::uint64_t kCount = 1000;
  HotspotChooser chooser(kCount, 0.2, 0.8);
  EXPECT_EQ(chooser.hot_count(), 200u);
  Xoshiro256 rng(37);
  int hot = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t r = chooser.next(rng);
    ASSERT_LT(r, kCount);
    hot += (r < chooser.hot_count());
  }
  const double hot_share = static_cast<double>(hot) / kDraws;
  EXPECT_GT(hot_share, 0.75);
  EXPECT_LT(hot_share, 0.85);
}

TEST(Keygen, FactoryMatchesDistributionEnum) {
  auto u = make_chooser(Distribution::kUniform, 10);
  auto z = make_chooser(Distribution::kZipfian, 10);
  auto h = make_chooser(Distribution::kHotspot, 10);
  EXPECT_EQ(u->record_count(), 10u);
  EXPECT_EQ(z->record_count(), 10u);
  EXPECT_EQ(h->record_count(), 10u);
  EXPECT_STREQ(to_string(Distribution::kUniform), "uniform");
  EXPECT_STREQ(to_string(Distribution::kZipfian), "zipfian");
  EXPECT_STREQ(to_string(Distribution::kHotspot), "hotspot");
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, BasicStats) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
}

TEST(Histogram, PercentilePrecision) {
  LatencyHistogram h;
  for (Duration v = 1; v <= 10000; ++v) h.record(v);
  // Log-bucketed: ~6% relative error tolerated.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 350.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0, 700.0);
  EXPECT_EQ(h.percentile(100), 10000u);
}

TEST(Histogram, PercentileMonotonic) {
  LatencyHistogram h;
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1'000'000) + 1);
  Duration prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const Duration v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, MergeEqualsUnion) {
  LatencyHistogram a, b, u;
  Xoshiro256 rng(29);
  for (int i = 0; i < 5000; ++i) {
    const Duration v = rng.below(100000) + 1;
    if (i % 2 == 0) a.record(v); else b.record(v);
    u.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), u.count());
  EXPECT_DOUBLE_EQ(a.mean(), u.mean());
  EXPECT_EQ(a.min(), u.min());
  EXPECT_EQ(a.max(), u.max());
  EXPECT_EQ(a.percentile(50), u.percentile(50));
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ExtremeValues) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(~Duration{0} / 2);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_GE(h.percentile(100), ~Duration{0} / 4);
}

TEST(Histogram, EmptyInputsAreAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (double p : {0.0, 50.0, 99.9, 100.0}) EXPECT_EQ(h.percentile(p), 0u);
}

TEST(Histogram, SingleSampleEveryPercentileIsTheSample) {
  LatencyHistogram h;
  h.record(777);
  // One sample: min == max == every percentile, exactly (bucket upper bounds
  // are clamped to the observed max, so no log-bucket error leaks through).
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  for (double p : {0.1, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.percentile(p), 777u) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 777.0);
}

TEST(Histogram, ValuesBelowSubBucketCountAreExact) {
  // The first 16 buckets are width-1: tiny durations suffer no bucketing
  // error at all.
  LatencyHistogram h;
  for (Duration v = 0; v < 16; ++v) h.record(v);
  for (int i = 1; i <= 16; ++i) {
    const double p = 100.0 * i / 16.0;
    EXPECT_EQ(h.percentile(p), static_cast<Duration>(i - 1)) << "p" << p;
  }
}

TEST(Histogram, PowerOfTwoBucketBoundaries) {
  // 2^k and 2^k - 1 straddle an exponent boundary; each must land in its own
  // bucket and percentile must resolve them without crossing the boundary.
  for (int k = 5; k <= 40; k += 7) {
    LatencyHistogram h;
    const Duration below = (Duration{1} << k) - 1;
    const Duration at = Duration{1} << k;
    h.record(below);
    h.record(at);
    // p50 falls in `below`'s bucket, whose upper bound is exactly 2^k - 1.
    EXPECT_EQ(h.percentile(50), below) << "k=" << k;
    EXPECT_EQ(h.percentile(100), at) << "k=" << k;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.record(10);
  a.record(1000);
  const Duration p50_before = a.percentile(50);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.percentile(50), p50_before);

  // And merging INTO an empty histogram adopts the source wholesale,
  // including min (the empty side's sentinel min must not leak through).
  LatencyHistogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 10u);
  EXPECT_EQ(b.max(), 1000u);
  EXPECT_EQ(b.percentile(50), a.percentile(50));
}

TEST(Histogram, MergeDisjointRangesPreservesTails) {
  LatencyHistogram lo, hi;
  for (int i = 0; i < 100; ++i) {
    lo.record(100);
    hi.record(1'000'000);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 200u);
  EXPECT_EQ(lo.min(), 100u);
  EXPECT_EQ(lo.max(), 1'000'000u);
  // p25 is in the low cluster, p75 in the high one; log-bucket error ~6%.
  EXPECT_NEAR(static_cast<double>(lo.percentile(25)), 100.0, 7.0);
  EXPECT_NEAR(static_cast<double>(lo.percentile(75)), 1'000'000.0, 70'000.0);
}

// ---------------------------------------------------------------- spsc ring

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(2);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, round);
  }
}

TEST(SpscRing, TwoThreadStress) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (ring.try_push(i)) ++i;
    }
  });
  std::uint64_t expected = 0;
  while (expected < kN) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------- status

TEST(Status, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(Status::kOk), "OK");
  EXPECT_EQ(to_string(Status::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(Status::kStale), "STALE");
  EXPECT_EQ(to_string(Status::kTimeout), "TIMEOUT");
}

TEST(Result, CarriesValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::kNotFound);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status(), Status::kNotFound);
}

}  // namespace
}  // namespace hydra
