// Unit + property tests for the storage engine: item layout, arena,
// compact hash table, KV store (guardian/lease semantics), lock-free cache.
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "common/keygen.hpp"
#include "common/rng.hpp"
#include "core/arena.hpp"
#include "core/hash_table.hpp"
#include "core/item.hpp"
#include "core/lockfree_cache.hpp"
#include "core/store.hpp"

namespace hydra::core {
namespace {

// ---------------------------------------------------------------- item

TEST(Item, SizeIncludesHeaderPaddingAndGuardian) {
  EXPECT_EQ(item_size(0, 0), 32u + 8u);
  EXPECT_EQ(item_size(16, 32), 32u + 48u + 8u);
  EXPECT_EQ(item_size(1, 0), 32u + 8u + 8u);  // 33 pads to 40
  EXPECT_EQ(item_size(3, 4), 32u + 8u + 8u);  // 39 pads to 40
}

TEST(Item, InitializeRoundTrips) {
  std::vector<std::byte> buf(item_size(16, 32));
  ItemView item(buf.data());
  const std::string key = format_key(42);
  const std::string value = synth_value(42);
  item.initialize(key, value, 3, 1000);
  EXPECT_EQ(item.key(), key);
  EXPECT_EQ(item.value(), value);
  EXPECT_EQ(item.header().version, 3u);
  EXPECT_EQ(item.header().lease_expiry, 1000u);
  EXPECT_EQ(item.header().access_count, 1u);
  EXPECT_TRUE(item.live());
  EXPECT_EQ(item.total_size(), buf.size());
}

TEST(Item, GuardianFlipKillsItem) {
  std::vector<std::byte> buf(item_size(4, 4));
  ItemView item(buf.data());
  item.initialize("abcd", "efgh", 1, 0);
  EXPECT_TRUE(item.live());
  item.set_guardian(kGuardianDead);
  EXPECT_FALSE(item.live());
  EXPECT_EQ(item.guardian(), kGuardianDead);
}

TEST(Item, ValidateDetectsAllFailureModes) {
  std::vector<std::byte> buf(item_size(4, 4));
  ItemView item(buf.data());
  item.initialize("abcd", "efgh", 1, 0);

  EXPECT_EQ(validate_item(buf.data(), buf.size(), "abcd"), ItemValidity::kValid);
  EXPECT_EQ(validate_item(buf.data(), buf.size(), "zzzz"), ItemValidity::kKeyMismatch);

  item.set_guardian(kGuardianDead);
  EXPECT_EQ(validate_item(buf.data(), buf.size(), "abcd"), ItemValidity::kDead);

  item.set_guardian(kGuardianLive);
  EXPECT_EQ(validate_item(buf.data(), buf.size() + 8, "abcd"), ItemValidity::kCorrupt);
  EXPECT_EQ(validate_item(buf.data(), 8, "abcd"), ItemValidity::kCorrupt);
}

// ---------------------------------------------------------------- arena

TEST(Arena, ClassForMapsPowerOfTwoBoundaries) {
  EXPECT_EQ(Arena::class_for(1), 0);
  EXPECT_EQ(Arena::class_for(64), 0);
  EXPECT_EQ(Arena::class_for(65), 1);
  EXPECT_EQ(Arena::class_for(128), 1);
  EXPECT_EQ(Arena::class_for(129), 2);
  EXPECT_EQ(Arena::class_size(0), 64u);
  EXPECT_EQ(Arena::class_size(3), 512u);
}

TEST(Arena, NeverHandsOutOffsetZero) {
  Arena arena(1 << 16);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t off = arena.allocate(64);
    ASSERT_NE(off, kNullOffset);
    EXPECT_NE(off, 0u);
  }
}

TEST(Arena, AllocationsAre64ByteAligned) {
  Arena arena(1 << 16);
  for (std::size_t size : {1u, 63u, 64u, 100u, 500u}) {
    const std::uint64_t off = arena.allocate(size);
    ASSERT_NE(off, kNullOffset);
    EXPECT_EQ(off % 64, 0u) << "size " << size;
  }
}

TEST(Arena, FreedBlocksAreReused) {
  Arena arena(1 << 12);
  const std::uint64_t a = arena.allocate(100);
  arena.deallocate(a, 100);
  const std::uint64_t b = arena.allocate(100);
  EXPECT_EQ(a, b);
}

TEST(Arena, FreelistIsPerClass) {
  Arena arena(1 << 16);
  const std::uint64_t small = arena.allocate(64);
  arena.deallocate(small, 64);
  const std::uint64_t big = arena.allocate(1024);
  EXPECT_NE(big, small);  // 1 KiB must not come from the 64 B freelist
}

TEST(Arena, ExhaustionReturnsNullAndCounts) {
  Arena arena(256);
  std::uint64_t last = 0;
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    last = arena.allocate(64);
    if (last != kNullOffset) ++ok;
  }
  EXPECT_LT(ok, 10);
  EXPECT_EQ(last, kNullOffset);
  EXPECT_GT(arena.failed_allocations(), 0u);
}

TEST(Arena, OversizeAndZeroRequestsFail) {
  Arena arena(1 << 20);
  EXPECT_EQ(arena.allocate(0), kNullOffset);
  EXPECT_EQ(arena.allocate(Arena::kMaxClass + 1), kNullOffset);
}

TEST(Arena, InUseAccountingBalances) {
  Arena arena(1 << 16);
  const std::size_t base = arena.bytes_in_use();
  const std::uint64_t a = arena.allocate(200);  // class 256
  EXPECT_EQ(arena.bytes_in_use(), base + 256);
  arena.deallocate(a, 200);
  EXPECT_EQ(arena.bytes_in_use(), base);
}

// ---------------------------------------------------------------- table

class TableTest : public ::testing::Test {
 protected:
  TableTest() : arena(8 << 20), table(arena, 64) {}

  /// Allocates a real item for `key` so full-key compares work.
  std::uint64_t add_item(const std::string& key, const std::string& value = "v") {
    const std::size_t size = item_size(key.size(), value.size());
    const std::uint64_t off = arena.allocate(size);
    EXPECT_NE(off, kNullOffset);
    ItemView(arena.at(off)).initialize(key, value, 1, 0);
    return off;
  }

  Arena arena;
  CompactHashTable table;
};

TEST_F(TableTest, InsertFindEraseRoundTrip) {
  const std::string key = "alpha";
  const std::uint64_t off = add_item(key);
  const std::uint64_t h = hash_key(key);
  EXPECT_EQ(table.find(h, key), kNullOffset);
  EXPECT_EQ(table.insert(h, key, off), CompactHashTable::InsertResult::kInserted);
  EXPECT_EQ(table.find(h, key), off);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.erase(h, key), off);
  EXPECT_EQ(table.find(h, key), kNullOffset);
  EXPECT_EQ(table.size(), 0u);
}

TEST_F(TableTest, DuplicateInsertRejected) {
  const std::string key = "dup";
  const std::uint64_t off1 = add_item(key);
  const std::uint64_t off2 = add_item(key);
  const std::uint64_t h = hash_key(key);
  EXPECT_EQ(table.insert(h, key, off1), CompactHashTable::InsertResult::kInserted);
  EXPECT_EQ(table.insert(h, key, off2), CompactHashTable::InsertResult::kDuplicate);
  EXPECT_EQ(table.find(h, key), off1);
}

TEST_F(TableTest, ReplaceSwapsOffset) {
  const std::string key = "swap";
  const std::uint64_t off1 = add_item(key, "old");
  const std::uint64_t off2 = add_item(key, "new");
  const std::uint64_t h = hash_key(key);
  table.insert(h, key, off1);
  EXPECT_EQ(table.replace(h, key, off2), off1);
  EXPECT_EQ(table.find(h, key), off2);
  EXPECT_EQ(table.replace(h, "absent", 1), kNullOffset);
}

TEST_F(TableTest, EraseMissingReturnsNull) {
  EXPECT_EQ(table.erase(hash_key("ghost"), "ghost"), kNullOffset);
}

TEST_F(TableTest, ThousandsOfKeysAllFindableThroughOverflowChains) {
  // 64 root buckets x 7 slots = 448 direct slots; 5000 keys force chains.
  std::map<std::string, std::uint64_t> expect;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    const std::uint64_t off = add_item(key);
    ASSERT_EQ(table.insert(hash_key(key), key, off),
              CompactHashTable::InsertResult::kInserted);
    expect[key] = off;
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_GT(table.overflow_buckets(), 100u);
  for (const auto& [key, off] : expect) {
    ASSERT_EQ(table.find(hash_key(key), key), off) << key;
  }
}

TEST_F(TableTest, EraseAllMergesOverflowBucketsBackToArena) {
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    table.insert(hash_key(key), key, add_item(key));
    keys.push_back(key);
  }
  ASSERT_GT(table.overflow_buckets(), 0u);
  for (const auto& key : keys) {
    ASSERT_NE(table.erase(hash_key(key), key), kNullOffset);
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.overflow_buckets(), 0u);  // all merged/freed
}

TEST_F(TableTest, CompactionKeepsRemainingKeysReachable) {
  // Fill, erase half (forcing chain compaction), verify the rest.
  std::vector<std::string> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(format_key(static_cast<std::uint64_t>(i)));
  std::map<std::string, std::uint64_t> expect;
  for (const auto& key : keys) {
    const std::uint64_t off = add_item(key);
    table.insert(hash_key(key), key, off);
    expect[key] = off;
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    table.erase(hash_key(keys[i]), keys[i]);
    expect.erase(keys[i]);
  }
  for (const auto& [key, off] : expect) {
    ASSERT_EQ(table.find(hash_key(key), key), off);
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_EQ(table.find(hash_key(keys[i]), keys[i]), kNullOffset);
  }
}

TEST_F(TableTest, SignatureFilterSkipsMostFullKeyCompares) {
  for (int i = 0; i < 400; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    table.insert(hash_key(key), key, add_item(key));
  }
  const std::uint64_t compares_before = table.full_key_compares();
  // Misses on present-bucket lookups: signatures should filter nearly all.
  for (int i = 1000; i < 1400; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    EXPECT_EQ(table.find(hash_key(key), key), kNullOffset);
  }
  const std::uint64_t compares = table.full_key_compares() - compares_before;
  // 400 misses x ~7 slots scanned; with 16-bit signatures expect ~0 compares
  // (allow a handful of signature collisions).
  EXPECT_LT(compares, 20u);
}

TEST_F(TableTest, LookupIsSingleCacheLineWithoutOverflow) {
  const std::string key = "solo";
  table.insert(hash_key(key), key, add_item(key));
  const std::uint64_t reads_before = table.cacheline_reads();
  EXPECT_NE(table.find(hash_key(key), key), kNullOffset);
  EXPECT_EQ(table.cacheline_reads() - reads_before, 1u);
}

// ---------------------------------------------------------------- store

TEST(Store, InsertGetRoundTrip) {
  KVStore store;
  EXPECT_EQ(store.insert("k1", "v1", 0), Status::kOk);
  auto r = store.get("k1", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "v1");
  EXPECT_EQ(r.value().version, 1u);
  EXPECT_NE(r.value().offset, kNullOffset);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Store, InsertExistingFails) {
  KVStore store;
  store.insert("k", "v", 0);
  EXPECT_EQ(store.insert("k", "v2", 0), Status::kExists);
  EXPECT_EQ(store.get("k", 0).value().value, "v");
}

TEST(Store, UpdateMissingFails) {
  KVStore store;
  EXPECT_EQ(store.update("nope", "v", 0), Status::kNotFound);
}

TEST(Store, GetMissingReportsNotFound) {
  KVStore store;
  auto r = store.get("missing", 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kNotFound);
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(Store, UpdateIsOutOfPlaceAndFlipsGuardian) {
  KVStore store;
  store.insert("k", "old-value", 0);
  const auto before = store.get("k", 0).value();
  ASSERT_EQ(store.update("k", "new-value", 100), Status::kOk);
  const auto after = store.get("k", 100).value();
  EXPECT_NE(before.offset, after.offset) << "update must not be in place";
  EXPECT_EQ(after.value, "new-value");
  EXPECT_EQ(after.version, 2u);
  // Old item memory still holds the dead carcass until the lease expires.
  ItemView old(store.arena().at(before.offset));
  EXPECT_FALSE(old.live());
  EXPECT_EQ(old.value(), "old-value");
  EXPECT_EQ(store.deferred_count(), 1u);
}

TEST(Store, PutUpsertsBothWays) {
  KVStore store;
  EXPECT_EQ(store.put("k", "v1", 0), Status::kOk);
  EXPECT_EQ(store.get("k", 0).value().version, 1u);
  EXPECT_EQ(store.put("k", "v2", 0), Status::kOk);
  EXPECT_EQ(store.get("k", 0).value().version, 2u);
  EXPECT_EQ(store.get("k", 0).value().value, "v2");
}

TEST(Store, RemoveFlipsGuardianAndDefersReclaim) {
  KVStore store;
  store.insert("k", "v", 0);
  const auto view = store.get("k", 0).value();
  EXPECT_EQ(store.remove("k", 10), Status::kOk);
  EXPECT_EQ(store.get("k", 10).status(), Status::kNotFound);
  ItemView dead(store.arena().at(view.offset));
  EXPECT_FALSE(dead.live());
  EXPECT_EQ(store.deferred_count(), 1u);
  EXPECT_EQ(store.remove("k", 10), Status::kNotFound);
}

TEST(Store, LeaseTermDoublesWithPopularity) {
  KVStore store;
  EXPECT_EQ(store.lease_term(1), 1 * kSecond);
  EXPECT_EQ(store.lease_term(2), 2 * kSecond);
  EXPECT_EQ(store.lease_term(3), 2 * kSecond);
  EXPECT_EQ(store.lease_term(4), 4 * kSecond);
  EXPECT_EQ(store.lease_term(63), 32 * kSecond);
  EXPECT_EQ(store.lease_term(64), 64 * kSecond);
  EXPECT_EQ(store.lease_term(1'000'000), 64 * kSecond);  // capped
}

TEST(Store, GetExtendsLeaseWithPopularity) {
  KVStore store;
  store.insert("hot", "v", 0);
  Time expiry = 0;
  for (int i = 0; i < 100; ++i) {
    expiry = store.get("hot", 0).value().lease_expiry;
  }
  EXPECT_EQ(expiry, 64 * kSecond);  // popular key reaches the max term
}

TEST(Store, GetWithoutLeaseGrantLeavesStateUntouched) {
  KVStore store;
  store.insert("k", "v", 0);
  const auto first = store.get("k", 0, /*grant_lease=*/false).value();
  const auto second = store.get("k", 0, /*grant_lease=*/false).value();
  EXPECT_EQ(first.lease_expiry, second.lease_expiry);
}

TEST(Store, RenewLeaseExtends) {
  KVStore store;
  store.insert("k", "v", 0);
  const Time before = store.get("k", 0).value().lease_expiry;
  EXPECT_EQ(store.renew_lease("k", 10 * kSecond), Status::kOk);
  const Time after = store.get("k", 0, false).value().lease_expiry;
  EXPECT_GT(after, before);
  EXPECT_EQ(store.renew_lease("missing", 0), Status::kNotFound);
}

TEST(Store, GarbageCollectionRespectsLeases) {
  KVStore store;
  store.insert("k", "v", 0);
  store.get("k", 0);  // lease to ~1s
  const auto view = store.get("k", 0).value();
  store.remove("k", 100);
  // Before lease expiry nothing may be freed.
  EXPECT_EQ(store.collect_garbage(view.lease_expiry - 1), 0u);
  EXPECT_EQ(store.deferred_count(), 1u);
  // After expiry the carcass goes back to the arena.
  const std::size_t used_before = store.arena().bytes_in_use();
  EXPECT_EQ(store.collect_garbage(view.lease_expiry + 1), 1u);
  EXPECT_EQ(store.deferred_count(), 0u);
  EXPECT_LT(store.arena().bytes_in_use(), used_before);
  EXPECT_EQ(store.stats().reclaimed_items, 1u);
}

TEST(Store, NextReclaimDueTracksQueue) {
  KVStore store;
  EXPECT_EQ(store.next_reclaim_due(), 0u);
  store.insert("k", "v", 0);
  const auto view = store.get("k", 0).value();
  store.remove("k", 10);
  EXPECT_EQ(store.next_reclaim_due(), view.lease_expiry);
}

TEST(Store, RejectsInvalidArguments) {
  KVStore store;
  EXPECT_EQ(store.insert("", "v", 0), Status::kInvalidArgument);
  const std::string huge(store.config().max_val_len + 1, 'x');
  EXPECT_EQ(store.insert("k", huge, 0), Status::kInvalidArgument);
  const std::string long_key(store.config().max_key_len + 1, 'k');
  EXPECT_EQ(store.insert(long_key, "v", 0), Status::kInvalidArgument);
}

TEST(Store, ArenaExhaustionSurfacesAsOom) {
  StoreConfig cfg;
  cfg.arena_bytes = 16 * 1024;
  cfg.min_buckets = 4;
  KVStore store(cfg);
  Status last = Status::kOk;
  for (int i = 0; i < 1000 && last == Status::kOk; ++i) {
    last = store.insert(format_key(static_cast<std::uint64_t>(i)), synth_value(1, 64), 0);
  }
  EXPECT_EQ(last, Status::kOutOfMemory);
  EXPECT_GT(store.stats().oom_failures, 0u);
}

TEST(Store, MemoryIsReusedAfterGc) {
  StoreConfig cfg;
  cfg.arena_bytes = 1 << 20;
  KVStore store(cfg);
  // Churn the same keys many times; with GC the arena must not grow beyond
  // a small multiple of the live set.
  for (int round = 0; round < 50; ++round) {
    const Time now = static_cast<Time>(round) * 2 * kSecond;
    for (int i = 0; i < 50; ++i) {
      ASSERT_NE(store.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(round)), now),
                Status::kOutOfMemory)
          << "round " << round;
    }
    store.collect_garbage(now + kSecond);
  }
  EXPECT_EQ(store.size(), 50u);
}

TEST(Store, PopularitySurvivesUpdates) {
  KVStore store;
  store.insert("k", "v", 0);
  for (int i = 0; i < 70; ++i) store.get("k", 0);
  store.update("k", "v2", 0);
  // Next get should still grant the max lease (popularity carried over).
  EXPECT_EQ(store.get("k", 0).value().lease_expiry, 64 * kSecond);
}

// Property test: the store must agree with a reference map under random
// interleavings of insert/update/remove/get/gc.
class StorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorePropertyTest, AgreesWithReferenceModel) {
  StoreConfig cfg;
  cfg.arena_bytes = 8 << 20;
  KVStore store(cfg);
  std::unordered_map<std::string, std::string> model;
  Xoshiro256 rng(GetParam());
  Time now = 0;
  for (int op = 0; op < 5000; ++op) {
    now += rng.below(50 * kMillisecond);
    const std::string key = format_key(rng.below(200));
    switch (rng.below(6)) {
      case 0: {  // insert
        const std::string value = synth_value(rng.below(1000), 8 + rng.below(64));
        const Status s = store.insert(key, value, now);
        if (model.contains(key)) {
          ASSERT_EQ(s, Status::kExists);
        } else {
          ASSERT_EQ(s, Status::kOk);
          model[key] = value;
        }
        break;
      }
      case 1: {  // update
        const std::string value = synth_value(rng.below(1000), 8 + rng.below(64));
        const Status s = store.update(key, value, now);
        if (model.contains(key)) {
          ASSERT_EQ(s, Status::kOk);
          model[key] = value;
        } else {
          ASSERT_EQ(s, Status::kNotFound);
        }
        break;
      }
      case 2: {  // remove
        const Status s = store.remove(key, now);
        ASSERT_EQ(s, model.erase(key) ? Status::kOk : Status::kNotFound);
        break;
      }
      case 5:  // gc
        store.collect_garbage(now);
        [[fallthrough]];
      default: {  // get
        auto r = store.get(key, now);
        if (model.contains(key)) {
          ASSERT_TRUE(r.ok()) << key;
          ASSERT_EQ(r.value().value, model[key]);
        } else {
          ASSERT_EQ(r.status(), Status::kNotFound);
        }
      }
    }
  }
  ASSERT_EQ(store.size(), model.size());
  store.collect_garbage(now + 100 * kSecond);
  EXPECT_EQ(store.deferred_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------- cache

struct FakePtr {
  std::uint64_t addr;
  std::uint64_t check;  // redundancy to detect torn reads: must equal ~addr
};

TEST(LockFreeCache, PutGetEraseSingleThread) {
  LockFreeCache<FakePtr> cache(256);
  EXPECT_EQ(cache.capacity(), 256u);
  FakePtr out{};
  EXPECT_FALSE(cache.get(42, &out));
  cache.put(42, FakePtr{100, ~100ULL});
  ASSERT_TRUE(cache.get(42, &out));
  EXPECT_EQ(out.addr, 100u);
  EXPECT_EQ(cache.size(), 1u);
  cache.put(42, FakePtr{200, ~200ULL});  // refresh, not a second entry
  ASSERT_TRUE(cache.get(42, &out));
  EXPECT_EQ(out.addr, 200u);
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(42);
  EXPECT_FALSE(cache.get(42, &out));
  EXPECT_EQ(cache.size(), 0u);
  cache.erase(42);  // double erase is a no-op
}

TEST(LockFreeCache, ManyKeysWithinCapacity) {
  LockFreeCache<FakePtr> cache(4096);
  for (std::uint64_t k = 1; k <= 2000; ++k) cache.put(k, FakePtr{k * 10, ~(k * 10)});
  int found = 0;
  FakePtr out{};
  for (std::uint64_t k = 1; k <= 2000; ++k) {
    if (cache.get(k, &out)) {
      ASSERT_EQ(out.addr, k * 10);
      ++found;
    }
  }
  // A few probe-window evictions are allowed, but the vast majority stays.
  EXPECT_GT(found, 1900);
}

TEST(LockFreeCache, OverfullCacheEvictsInsteadOfFailing) {
  LockFreeCache<FakePtr> cache(64);
  for (std::uint64_t k = 1; k <= 1000; ++k) cache.put(k, FakePtr{k, ~k});
  EXPECT_GT(cache.evictions(), 0u);
  // Whatever is present must still be internally consistent.
  FakePtr out{};
  int found = 0;
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    if (cache.get(k, &out)) {
      ASSERT_EQ(out.check, ~out.addr);
      ++found;
    }
  }
  EXPECT_GT(found, 0);
  EXPECT_LE(found, 64);
}

TEST(LockFreeCache, HitMissCountersTrack) {
  LockFreeCache<FakePtr> cache(64);
  cache.put(7, FakePtr{1, ~1ULL});
  FakePtr out{};
  cache.get(7, &out);
  cache.get(8, &out);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LockFreeCache, ConcurrentReadersAndWritersNeverSeeTornValues) {
  LockFreeCache<FakePtr> cache(128);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> threads;
  // Writers continually update a small hot set with self-checking values.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&cache, &stop, w] {
      Xoshiro256 rng(static_cast<std::uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = 1 + rng.below(16);
        const std::uint64_t v = rng();
        cache.put(key, FakePtr{v, ~v});
      }
    });
  }
  // Readers validate the redundancy invariant on every hit.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&cache, &stop, &torn, r] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) + 100);
      FakePtr out{};
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = 1 + rng.below(16);
        if (cache.get(key, &out) && out.check != ~out.addr) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0u) << "seqlock let a torn value escape";
}

}  // namespace
}  // namespace hydra::core
