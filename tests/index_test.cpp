// Ordered-index model check (DESIGN.md §13): the B+-tree is driven through
// seeded-random interleavings of insert/update/erase/scan and compared
// against a std::map reference after every step, with the structural
// invariant walk (key order, fill bounds, uniform depth, leaf-chain
// integrity) asserted throughout. Plus the leaf-page codec's round-trip and
// corruption-rejection properties the one-sided scan path depends on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/keygen.hpp"
#include "common/rng.hpp"
#include "index/btree.hpp"
#include "index/leaf_page.hpp"

namespace hydra::index {
namespace {

int env_runs(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

std::vector<std::pair<std::string, std::uint64_t>> collect(const OrderedIndex& idx,
                                                           const std::string& from = "",
                                                           bool exclusive = false) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  idx.scan(from, exclusive, [&](std::string_view k, std::uint64_t off) {
    out.emplace_back(std::string(k), off);
    return true;
  });
  return out;
}

// ---------------------------------------------------------------- structure

TEST(OrderedIndex, InsertFindErase) {
  OrderedIndex idx(4);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.insert_or_assign("b", 2));
  EXPECT_TRUE(idx.insert_or_assign("a", 1));
  EXPECT_TRUE(idx.insert_or_assign("c", 3));
  EXPECT_FALSE(idx.insert_or_assign("b", 20));  // assign, not insert
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.find("b").value(), 20u);
  EXPECT_EQ(idx.find("a").value(), 1u);
  EXPECT_FALSE(idx.find("z").has_value());
  EXPECT_TRUE(idx.erase("b"));
  EXPECT_FALSE(idx.erase("b"));
  EXPECT_FALSE(idx.find("b").has_value());
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.check_invariants(), "");
}

TEST(OrderedIndex, SplitsKeepOrderAndInvariants) {
  OrderedIndex idx(4);  // tiny fanout forces deep trees quickly
  for (int i = 0; i < 500; ++i) {
    idx.insert_or_assign(format_key(static_cast<std::uint64_t>(i * 7919 % 500), 16),
                         static_cast<std::uint64_t>(i));
    ASSERT_EQ(idx.check_invariants(), "") << "after insert " << i;
  }
  const auto all = collect(idx);
  ASSERT_EQ(all.size(), idx.size());
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1].first, all[i].first);
  EXPECT_GT(idx.leaf_count(), 1u);
}

TEST(OrderedIndex, EraseToEmptyCollapsesRoot) {
  OrderedIndex idx(4);
  for (int i = 0; i < 200; ++i) idx.insert_or_assign(format_key(i, 16), i);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(idx.erase(format_key(i, 16)));
    ASSERT_EQ(idx.check_invariants(), "") << "after erase " << i;
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.leaf_count(), 1u);
  EXPECT_TRUE(collect(idx).empty());
}

TEST(OrderedIndex, ScanFromMidRangeAndExclusive) {
  OrderedIndex idx(8);
  for (int i = 0; i < 100; ++i) idx.insert_or_assign(format_key(i, 16), i);
  auto inc = collect(idx, format_key(50, 16), /*exclusive=*/false);
  ASSERT_EQ(inc.size(), 50u);
  EXPECT_EQ(inc.front().first, format_key(50, 16));
  auto exc = collect(idx, format_key(50, 16), /*exclusive=*/true);
  ASSERT_EQ(exc.size(), 49u);
  EXPECT_EQ(exc.front().first, format_key(51, 16));
  // Start key between two stored keys resumes at the successor either way.
  auto gap = collect(idx, format_key(50, 16) + "x", /*exclusive=*/false);
  ASSERT_EQ(gap.size(), 49u);
  EXPECT_EQ(gap.front().first, format_key(51, 16));
}

TEST(OrderedIndex, ScanEarlyStopAndLeafFor) {
  OrderedIndex idx(4);
  for (int i = 0; i < 64; ++i) idx.insert_or_assign(format_key(i, 16), i);
  int seen = 0;
  idx.scan("", false, [&](std::string_view, std::uint64_t) { return ++seen < 10; });
  EXPECT_EQ(seen, 10);

  const auto leaf = idx.leaf_for(format_key(30, 16), /*exclusive=*/false);
  ASSERT_TRUE(leaf.has_value());
  bool found = false;
  for (const auto& e : *leaf->entries) found = found || e.key == format_key(30, 16);
  EXPECT_TRUE(found);
  EXPECT_FALSE(idx.leaf_for(format_key(63, 16), /*exclusive=*/true).has_value());
}

TEST(OrderedIndex, LeafVersionBumpsOnMutation) {
  OrderedIndex idx(8);
  for (int i = 0; i < 8; ++i) idx.insert_or_assign(format_key(i, 16), i);
  const auto before = idx.leaf_for(format_key(0, 16), false);
  ASSERT_TRUE(before.has_value());
  const std::uint64_t v0 = before->version;
  idx.insert_or_assign(format_key(0, 16), 999);  // in-place assign
  const auto after = idx.leaf_for(format_key(0, 16), false);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->id, before->id);
  EXPECT_GT(after->version, v0);
}

// ---------------------------------------------------- model check vs std::map

struct ModelTrace {
  std::vector<std::string> log;  ///< serialized op results for determinism diff
};

// void-returning so ASSERT_* may bail; the trace comes back via `out`.
void run_model_check(std::uint64_t seed, int ops, ModelTrace& trace) {
  Xoshiro256 rng(seed);
  const std::size_t fanout = 4 + rng.below(29);  // 4..32
  OrderedIndex idx(fanout);
  std::map<std::string, std::uint64_t> ref;
  const std::uint64_t key_space = 64 + rng.below(512);

  for (int i = 0; i < ops; ++i) {
    const std::string key = format_key(rng.below(key_space), 16);
    const double dice = rng.uniform();
    if (dice < 0.45) {  // insert-or-update
      const std::uint64_t off = rng();
      const bool inserted = idx.insert_or_assign(key, off);
      const bool fresh = ref.find(key) == ref.end();
      ref[key] = off;
      EXPECT_EQ(inserted, fresh) << "seed " << seed << " op " << i;
      trace.log.push_back("u" + key + (inserted ? "1" : "0"));
    } else if (dice < 0.65) {  // erase
      const bool erased = idx.erase(key);
      EXPECT_EQ(erased, ref.erase(key) > 0) << "seed " << seed << " op " << i;
      trace.log.push_back("e" + key + (erased ? "1" : "0"));
    } else if (dice < 0.8) {  // point lookup
      const auto got = idx.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(got.has_value(), it != ref.end()) << "seed " << seed << " op " << i;
      if (got.has_value()) EXPECT_EQ(*got, it->second);
      trace.log.push_back("f" + key);
    } else {  // bounded range scan vs the reference
      const bool exclusive = rng.below(2) == 1;
      const std::size_t limit = 1 + rng.below(32);
      std::vector<std::pair<std::string, std::uint64_t>> got;
      idx.scan(key, exclusive, [&](std::string_view k, std::uint64_t off) {
        got.emplace_back(std::string(k), off);
        return got.size() < limit;
      });
      auto it = exclusive ? ref.upper_bound(key) : ref.lower_bound(key);
      std::vector<std::pair<std::string, std::uint64_t>> want;
      for (; it != ref.end() && want.size() < limit; ++it) want.emplace_back(*it);
      ASSERT_EQ(got, want) << "seed " << seed << " op " << i;
      std::string s = "s";
      for (const auto& [k, v] : got) s += k;
      trace.log.push_back(std::move(s));
    }
    if (i % 16 == 0) {
      ASSERT_EQ(idx.check_invariants(), "") << "seed " << seed << " op " << i;
      ASSERT_EQ(idx.size(), ref.size());
    }
  }
  ASSERT_EQ(idx.check_invariants(), "") << "seed " << seed << " final";

  // Full sweep: the index and the reference agree entry-for-entry.
  const auto all = collect(idx);
  ASSERT_EQ(all.size(), ref.size()) << "seed " << seed;
  auto rit = ref.begin();
  for (const auto& [k, v] : all) {
    ASSERT_EQ(k, rit->first) << "seed " << seed;
    ASSERT_EQ(v, rit->second) << "seed " << seed;
    ++rit;
  }
  for (const auto& [k, v] : all) trace.log.push_back("F" + k);
}

TEST(OrderedIndexModel, SeededRandomVsStdMap) {
  // >= 200 seeds by default (the acceptance floor); HYDRA_INDEX_RANDOM_RUNS
  // widens or narrows the sweep (tier1.sh --scan scales it under sanitizers).
  const int runs = env_runs("HYDRA_INDEX_RANDOM_RUNS", 200);
  for (int r = 0; r < runs; ++r) {
    ModelTrace trace;
    run_model_check(0x5EEDBA5Eu + static_cast<std::uint64_t>(r) * 7919u, 400, trace);
    if (HasFatalFailure() || HasFailure()) return;
  }
}

TEST(OrderedIndexModel, DeterministicDoubleRun) {
  // Same seed => identical op-by-op results and identical final sweep.
  ModelTrace a;
  ModelTrace b;
  run_model_check(424242, 600, a);
  run_model_check(424242, 600, b);
  ASSERT_FALSE(a.log.empty());
  ASSERT_EQ(a.log, b.log);
}

// ------------------------------------------------------------ leaf-page codec

std::vector<std::pair<std::string_view, std::string_view>> sample_entries() {
  static const std::vector<std::pair<std::string, std::string>> kv = {
      {"alpha", "1111"}, {"bravo", "22"}, {"charlie", "333333"}};
  std::vector<std::pair<std::string_view, std::string_view>> out;
  for (const auto& [k, v] : kv) out.emplace_back(k, v);
  return out;
}

TEST(LeafPage, RoundTrip) {
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries) + 64);  // slack tolerated
  ASSERT_TRUE(encode_leaf_page(page, /*id=*/7, /*version=*/3, /*epoch=*/9,
                               /*last=*/true, entries));
  const auto decoded = decode_leaf_page(page);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->leaf_id, 7u);
  EXPECT_EQ(decoded->leaf_version, 3u);
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_TRUE(decoded->last);
  ASSERT_EQ(decoded->entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded->entries[i].first, entries[i].first);
    EXPECT_EQ(decoded->entries[i].second, entries[i].second);
  }
}

TEST(LeafPage, EncodeRejectsUndersizedBuffer) {
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries) - 1);
  EXPECT_FALSE(encode_leaf_page(page, 1, 1, 1, false, entries));
}

TEST(LeafPage, TruncationRejected) {
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries));
  ASSERT_TRUE(encode_leaf_page(page, 1, 1, 1, false, entries));
  for (std::size_t cut = 0; cut < page.size(); cut += 7) {
    EXPECT_FALSE(decode_leaf_page({page.data(), cut}).has_value()) << "cut " << cut;
  }
}

TEST(LeafPage, EveryFlippedByteRejected) {
  // The checksum covers header and payload alike: flipping ANY byte of the
  // encoded prefix must be caught (this is what makes torn RDMA reads safe).
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries));
  ASSERT_TRUE(encode_leaf_page(page, 5, 9, 2, true, entries));
  ASSERT_TRUE(decode_leaf_page(page).has_value());
  for (std::size_t i = 0; i < page.size(); ++i) {
    std::vector<std::byte> torn = page;
    torn[i] ^= std::byte{0xA5};
    EXPECT_FALSE(decode_leaf_page(torn).has_value()) << "byte " << i;
  }
}

TEST(LeafPage, CountCorruptionNeverWildReads) {
  // A forged count that implies more payload than present must fail cleanly
  // (counted before allocation, mirroring the proto codec discipline).
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries));
  ASSERT_TRUE(encode_leaf_page(page, 1, 1, 1, false, entries));
  // Forge count = 0xFFFFFF and redo nothing else; checksum now mismatches
  // too, but shrink the check: corrupting count alone must already fail.
  std::vector<std::byte> forged = page;
  forged[4] = std::byte{0xFF};
  forged[5] = std::byte{0xFF};
  forged[6] = std::byte{0xFF};
  forged[7] = std::byte{0x00};
  EXPECT_FALSE(decode_leaf_page(forged).has_value());
}

TEST(LeafPage, UnknownFlagsRejected) {
  const auto entries = sample_entries();
  std::vector<std::byte> page(leaf_page_bytes(entries));
  ASSERT_TRUE(encode_leaf_page(page, 1, 1, 1, false, entries));
  std::vector<std::byte> forged = page;
  forged[36] = std::byte{0x02};  // undefined flag bit
  EXPECT_FALSE(decode_leaf_page(forged).has_value());
}

TEST(LeafPage, EmptyPageRoundTrips) {
  std::vector<std::pair<std::string_view, std::string_view>> none;
  std::vector<std::byte> page(leaf_page_bytes(none));
  ASSERT_TRUE(encode_leaf_page(page, 1, 1, 1, true, none));
  const auto decoded = decode_leaf_page(page);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->entries.empty());
  EXPECT_TRUE(decoded->last);
}

}  // namespace
}  // namespace hydra::index
