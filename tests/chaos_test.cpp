// Deterministic chaos sweep over the failover plane (DESIGN.md §7), plus
// one regression test per crash-path bug the harness flushed out.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "hydradb/hydra_cluster.hpp"

namespace hydra {
namespace {

using chaos::ChaosRunner;
using chaos::ChaosSchedule;
using chaos::RunReport;

std::string describe(const RunReport& r) {
  std::string out;
  for (const auto& v : r.violations) out += "  " + v + "\n";
  out += "--- history ---\n" + r.history;
  return out;
}

const ChaosSchedule& scripted_by_name(const std::string& name) {
  static const auto all = ChaosSchedule::scripted();
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no scripted schedule named " << name;
  return all.front();
}

// ---------------------------------------------------------------- the sweep

// 8 scripted families x 10 seeds = 80 combos.
TEST(ChaosSweep, ScriptedFamilies) {
  for (const auto& schedule : ChaosSchedule::scripted()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const RunReport r = ChaosRunner::run(schedule, seed);
      EXPECT_TRUE(r.passed()) << schedule.name << " seed " << seed << ":\n"
                              << describe(r);
      EXPECT_GT(r.acked_puts, 0u) << schedule.name << " seed " << seed;
    }
  }
}

// Seeded-random compositions of the same fault alphabet; 140 by default
// (70 + 140 = 210 combos >= the 200 the acceptance bar asks for). The
// HYDRA_CHAOS_RANDOM_RUNS environment knob scales the sweep up or down
// (tier1.sh uses it to shorten the ASan pass).
TEST(ChaosSweep, RandomFamilies) {
  int runs = 140;
  if (const char* env = std::getenv("HYDRA_CHAOS_RANDOM_RUNS")) {
    runs = std::max(1, std::atoi(env));
  }
  for (int i = 1; i <= runs; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const ChaosSchedule schedule = ChaosSchedule::random(seed);
    const RunReport r = ChaosRunner::run(schedule, seed);
    EXPECT_TRUE(r.passed()) << schedule.name << ":\n" << describe(r);
  }
}

// Identical (schedule, seed) must reproduce the run byte-for-byte.
TEST(ChaosDeterminism, SameSeedSameHistory) {
  const auto& scripted = scripted_by_name("primary-kill-mid-put");
  const RunReport a = ChaosRunner::run(scripted, 7);
  const RunReport b = ChaosRunner::run(scripted, 7);
  EXPECT_EQ(a.history, b.history);

  const ChaosSchedule random = ChaosSchedule::random(42);
  const RunReport c = ChaosRunner::run(random, 42);
  const RunReport d = ChaosRunner::run(random, 42);
  EXPECT_EQ(c.history, d.history);
  EXPECT_NE(a.history, c.history);  // different schedules diverge
}

// ------------------------------------------------- one regression per bug

// Bug: a primary death event arriving while the SWAT leader was itself a
// corpse (znode lingering until session expiry) was dropped -- no member
// reacted, the shard stayed dead forever. The pending-death set + /swat/
// watch must hand the reaction to the next leader.
TEST(ChaosRegression, SwatLeadershipGap) {
  const RunReport r =
      ChaosRunner::run(scripted_by_name("swat-leader-dead-during-failover"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u) << describe(r);
}

// Bug: a replica crash with strict-ack waiters outstanding wedged the
// primary's write path forever (the waiters' min-acked barrier included the
// dead link). Quarantine must settle every owed completion.
TEST(ChaosRegression, StrictAckSecondaryDeathNeverWedges) {
  const RunReport r =
      ChaosRunner::run(scripted_by_name("secondary-kill-mid-replay"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.wedged_ops, 0u) << describe(r);
  // No failover here -- only a replica died; the primary must have absorbed
  // the loss by itself.
  EXPECT_EQ(r.failovers, 0u) << describe(r);
}

// Bug: a torn ack write left the strict-mode stream stalled forever (the
// primary waited for an ack the secondary believed it had already sent).
// The ack-deadline probe must re-solicit and recover without client help.
TEST(ChaosRegression, TornAckRecoversWithoutTimeouts) {
  const RunReport r = ChaosRunner::run(scripted_by_name("torn-and-dropped-ack"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.wedged_ops, 0u);
  EXPECT_EQ(r.failovers, 0u) << describe(r);  // wire noise must not kill anyone
}

// Bug: heartbeat suppression past the session timeout let SWAT's promotion
// race the primary's tick-granularity self-fence: the promotion was refused
// ("primary still alive"), the death event was already consumed, and the
// shard stayed dead after fencing. Promotion must fence and proceed.
TEST(ChaosRegression, SuppressedHeartbeatsFenceAndPromote) {
  const RunReport r =
      ChaosRunner::run(scripted_by_name("heartbeat-suppression-fences"), 1);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_GE(r.failovers, 1u) << describe(r);
}

// The shared mux QP dies abruptly (twice) with PUTs in flight; nobody tells
// the mux layer. Endpoints must time out, tear the channel down and lazily
// re-establish -- the trace must show both the failure reclaims and the
// reopens, and no acked write may be lost (the family's invariant check).
TEST(ChaosRegression, MuxChannelKillRetransmitsWithoutLoss) {
  obs::Plane plane;
  const RunReport r =
      ChaosRunner::run(scripted_by_name("mux-channel-kill-mid-put"), 1, &plane);
  EXPECT_TRUE(r.passed()) << describe(r);
  EXPECT_EQ(r.wedged_ops, 0u) << describe(r);
  EXPECT_EQ(r.failovers, 0u) << describe(r);  // QP death != process death
  const auto q = plane.query();
  // Two kills -> at least two failure teardowns (b=1 marks failure), and the
  // channel must have been opened at least 3 times (initial + reopen each).
  std::uint64_t failure_reclaims = 0;
  for (const auto& t : q.of(obs::TraceKind::kMuxChannelReclaimed)) {
    if (t.b == 1) ++failure_reclaims;
  }
  EXPECT_GE(failure_reclaims, 2u);
  EXPECT_GE(q.count(obs::TraceKind::kMuxChannelOpened), 3u);
}

// Bug: SWAT parsed "/shards/<id>/primary" with a bare std::stoul -- any
// garbage znode under /shards/ (which any session can create) aborted the
// whole SWAT member. Malformed paths must be ignored.
TEST(ChaosRegression, GarbageShardZnodeIsIgnored) {
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 1;
  opts.total_shards = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 1;
  opts.replicas = 1;
  opts.enable_swat = true;
  db::HydraCluster cluster(opts);
  ASSERT_EQ(cluster.put("k", "v"), Status::kOk);

  cluster.coordinator().create("/shards/not-a-number/primary", "junk");
  cluster.run_for(10 * kMillisecond);
  cluster.coordinator().remove("/shards/not-a-number/primary");
  cluster.run_for(kSecond);  // the kDeleted watch fires -> parse -> ignore

  EXPECT_EQ(cluster.failovers(), 0u);
  EXPECT_EQ(*cluster.get("k"), "v");  // cluster still healthy
}

}  // namespace
}  // namespace hydra
