// Call Data Record processing scenario (paper section 2.3).
//
// Stream processing elements look up caller/callee subscriber profiles and
// update usage counters for every record, needing millions of accesses per
// second at sub-hundreds-of-microseconds latency.
#include <cstdio>

#include "apps/cdr.hpp"

int main() {
  using namespace hydra;
  db::ClusterOptions opts;
  opts.server_nodes = 2;
  opts.shards_per_node = 4;
  opts.client_nodes = 2;
  opts.clients_per_node = 8;
  opts.enable_swat = false;
  db::HydraCluster cluster(opts);

  apps::CdrConfig cfg;
  cfg.processing_elements = 16;
  cfg.subscriber_count = 50'000;
  cfg.records_per_pe = 300;

  std::printf("loading %llu subscriber profiles...\n",
              static_cast<unsigned long long>(cfg.subscriber_count));
  apps::load_subscribers(cluster, cfg);

  std::printf("processing call records with %d PEs (2 lookups + 1 update each)...\n",
              cfg.processing_elements);
  const auto result = apps::run_cdr(cluster, cfg);

  std::printf("\nprocessed %llu records\n", static_cast<unsigned long long>(result.records));
  std::printf("stream throughput : %10.0f records/s\n", result.records_per_sec);
  std::printf("store accesses    : %10.0f accesses/s\n", result.accesses_per_sec);
  std::printf("record latency    : avg %.1f us, p99 %.1f us\n", result.avg_record_latency_us,
              static_cast<double>(result.p99_record_latency) / 1000.0);
  std::printf("\nSLO check (section 2.3): latency <= hundreds of microseconds: %s\n",
              result.avg_record_latency_us < 300.0 ? "MET" : "MISSED");
  return 0;
}
