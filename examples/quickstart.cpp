// Quickstart: bring up a HydraDB cluster, do the basic key-value
// operations, and watch the RDMA machinery work.
//
//   ./quickstart
//
// Walks through: cluster bring-up, PUT/GET/REMOVE, remote-pointer caching
// (second GET runs as a one-sided RDMA Read), guardian-word invalidation
// after an update, and the cluster-wide traffic counters.
#include <cstdio>

#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"

int main() {
  using namespace hydra;
  set_log_level(LogLevel::kInfo);

  // The paper's default testbed shape: one server machine with 4 shards,
  // clients on separate machines, coordination on its own nodes.
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 4;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  db::HydraCluster cluster(opts);
  std::printf("cluster up: %zu shards, %zu clients\n", cluster.shard_count(),
              cluster.clients().size());

  // --- basic operations -----------------------------------------------------
  if (cluster.put("greeting", "hello, hydra!") != Status::kOk) {
    std::printf("put failed\n");
    return 1;
  }
  auto value = cluster.get("greeting");
  std::printf("GET greeting -> %s\n", value ? value->c_str() : "(miss)");

  // --- remote pointer caching ------------------------------------------------
  // The first GET travelled as an RDMA-Write message and returned a remote
  // pointer; this one is served by a one-sided RDMA Read -- zero server CPU.
  const auto reads_before = cluster.fabric().stats().rdma_reads;
  value = cluster.get("greeting");
  std::printf("GET again -> %s  (rdma reads: %llu -> %llu)\n",
              value ? value->c_str() : "(miss)",
              static_cast<unsigned long long>(reads_before),
              static_cast<unsigned long long>(cluster.fabric().stats().rdma_reads));

  // --- guardian-word consistency ----------------------------------------------
  // An update is out-of-place: the old item's guardian flips, so a stale
  // cached pointer detects it and falls back to the message path.
  cluster.put("greeting", "hello again, updated in place? never!");
  value = cluster.get("greeting");
  std::printf("GET after update -> %s\n", value ? value->c_str() : "(miss)");
  std::printf("client invalid-pointer hits: %llu (guardian did its job)\n",
              static_cast<unsigned long long>(cluster.clients()[0]->stats().invalid_hits));

  // --- removal -----------------------------------------------------------------
  cluster.remove("greeting");
  Status status = Status::kOk;
  cluster.get("greeting", 0, &status);
  std::printf("GET after remove -> %s\n", std::string(to_string(status)).c_str());

  // --- a little traffic -----------------------------------------------------------
  for (int i = 0; i < 500; ++i) {
    cluster.put("user" + std::to_string(i % 50), "profile-" + std::to_string(i));
  }
  int hits = 0;
  for (int i = 0; i < 500; ++i) {
    if (cluster.get("user" + std::to_string(i % 50)).has_value()) ++hits;
  }
  const auto& fs = cluster.fabric().stats();
  std::printf("\n500 puts + 500 gets (50 hot keys): %d hits\n", hits);
  std::printf("fabric: %llu rdma writes, %llu rdma reads, %llu sends\n",
              static_cast<unsigned long long>(fs.rdma_writes),
              static_cast<unsigned long long>(fs.rdma_reads),
              static_cast<unsigned long long>(fs.sends));
  for (auto* c : cluster.clients()) {
    std::printf("client %u: %llu ptr hits, %llu invalid, %llu misses, avg GET %.2f us\n",
                c->id(), static_cast<unsigned long long>(c->stats().ptr_hits),
                static_cast<unsigned long long>(c->stats().invalid_hits),
                static_cast<unsigned long long>(c->stats().ptr_misses),
                c->stats().get_latency.mean() / 1000.0);
  }
  std::printf("\nquickstart complete.\n");
  return 0;
}
