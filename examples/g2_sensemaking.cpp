// G2 Sensemaking scenario (paper section 2.2, Figure 3).
//
// Scales the number of concurrent analytics engines against both backends:
// a transactional in-memory database (statements serialized by the lock
// manager, carried over kernel TCP) and HydraDB.
#include <cstdio>
#include <vector>

#include "apps/g2.hpp"

int main() {
  using namespace hydra;
  std::printf("%-8s %-24s %-24s %s\n", "engines", "in-memory DB (obs/s)", "HydraDB (obs/s)",
              "ratio");

  for (const int engines : {1, 2, 4, 8, 16, 32}) {
    apps::G2Config cfg;
    cfg.engines = engines;
    cfg.observations_per_engine = 150;
    cfg.entity_count = 10'000;

    // Baseline: the in-memory database.
    sim::Scheduler db_sched;
    fabric::Fabric db_fabric{db_sched};
    const NodeId db_node = db_fabric.add_node("db").id();
    std::vector<NodeId> engine_nodes;
    for (int i = 0; i < 4; ++i) engine_nodes.push_back(db_fabric.add_node("engine").id());
    apps::InMemoryDbBackend db_backend(db_sched, db_fabric, db_node, engine_nodes);
    apps::load_entities(db_backend, cfg);
    const auto db_result = apps::run_g2(db_sched, db_backend, cfg);

    // HydraDB as the real-time observation store.
    db::ClusterOptions opts;
    opts.server_nodes = 1;
    opts.shards_per_node = 4;
    opts.client_nodes = 4;
    opts.clients_per_node = 8;
    opts.enable_swat = false;
    db::HydraCluster cluster(opts);
    apps::HydraDbBackend hydra_backend(cluster);
    apps::load_entities(hydra_backend, cfg);
    const auto hydra_result = apps::run_g2(cluster.scheduler(), hydra_backend, cfg);

    std::printf("%-8d %-24.0f %-24.0f %.1fx\n", engines, db_result.observations_per_sec,
                hydra_result.observations_per_sec,
                hydra_result.observations_per_sec / db_result.observations_per_sec);
  }
  std::printf("\nHydraDB lets several times more engines operate concurrently (Fig 3).\n");
  return 0;
}
