// High-availability walkthrough (paper section 5).
//
// Writes replicated data, crashes a primary shard, and narrates SWAT's
// reaction: session expiry at the coordinator, promotion of the secondary,
// clients re-routing, and every key still answering.
#include <cstdio>
#include <string>

#include "common/keygen.hpp"
#include "common/logging.hpp"
#include "hydradb/hydra_cluster.hpp"

int main() {
  using namespace hydra;
  set_log_level(LogLevel::kInfo);

  db::ClusterOptions opts;
  opts.server_nodes = 3;
  opts.shards_per_node = 1;
  opts.client_nodes = 1;
  opts.clients_per_node = 2;
  opts.replicas = 1;  // every primary streams its log to one secondary
  opts.client_template.request_timeout = 100 * kMillisecond;
  opts.client_template.max_retries = 100;
  db::HydraCluster cluster(opts);
  std::printf("cluster: 3 server machines, 3 primary shards, 1 replica each, SWAT armed\n\n");

  constexpr int kKeys = 100;
  for (int i = 0; i < kKeys; ++i) {
    cluster.put(format_key(static_cast<std::uint64_t>(i)), synth_value(static_cast<std::uint64_t>(i)));
  }
  cluster.run_for(50 * kMillisecond);  // drain the replication streams
  std::printf("wrote %d keys through the RDMA logging replication path\n", kKeys);

  const ShardId victim = 0;
  std::printf("\n>>> crash-injecting the primary of shard %u <<<\n\n", victim);
  cluster.crash_primary(victim);

  // The dead shard's heartbeats stop; its coordinator session expires; the
  // SWAT leader sees the ephemeral znode vanish and promotes the secondary.
  cluster.run_for(5 * kSecond);
  std::printf("\nfailovers performed: %llu\n",
              static_cast<unsigned long long>(cluster.failovers()));

  int alive = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = format_key(static_cast<std::uint64_t>(i));
    auto v = cluster.get(key);
    if (v.has_value() && *v == synth_value(static_cast<std::uint64_t>(i))) ++alive;
  }
  std::printf("post-failover integrity: %d/%d keys intact\n", alive, kKeys);

  cluster.put("written-after-failover", "still-writable");
  auto v = cluster.get("written-after-failover");
  std::printf("write availability restored: %s\n", v ? "yes" : "no");

  std::printf("\n%s\n", alive == kKeys ? "zero data loss -- HA design held up."
                                       : "DATA LOSS DETECTED");
  return alive == kKeys ? 0 : 1;
}
