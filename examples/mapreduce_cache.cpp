// MapReduce acceleration scenario (paper section 2.1).
//
// Runs the same I/O-heavy job against in-memory HDFS over TCP and against
// a HydraDB cache layer holding the blocks as 4 MB chunks, then prints the
// speedup -- the Figure 1/2 story in miniature.
#include <cstdio>

#include "apps/hdfs_lite.hpp"
#include "apps/mapreduce.hpp"
#include "hydradb/hydra_cluster.hpp"

int main() {
  using namespace hydra;
  apps::JobSpec job;
  job.name = "TestDFSIO-read";
  job.tasks = 6;
  job.blocks_per_task = 3;
  job.block_bytes = 4u << 20;
  job.compute_per_byte = 0.0;  // pure I/O

  // --- baseline: in-memory HDFS over the TCP stack ---------------------------
  sim::Scheduler sched;
  fabric::Fabric fabric{sched};
  const NodeId datanode = fabric.add_node("datanode").id();
  std::vector<NodeId> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(fabric.add_node("worker").id());
  apps::HdfsLite hdfs(sched, fabric, apps::HdfsConfig{datanode});
  apps::load_blocks_into_hdfs(hdfs, job);
  const Duration hdfs_time = apps::run_job_on_hdfs(sched, hdfs, workers, job);
  std::printf("%-18s on in-memory HDFS : %8.2f ms\n", job.name.c_str(),
              static_cast<double>(hdfs_time) / 1e6);

  // --- HydraDB as the cache layer ----------------------------------------------
  db::ClusterOptions opts;
  opts.server_nodes = 1;
  opts.shards_per_node = 4;
  opts.client_nodes = 3;
  opts.clients_per_node = 2;
  opts.enable_swat = false;
  opts.shard_template.store.arena_bytes = 512ull << 20;
  opts.shard_template.msg_slot_bytes = 5 << 20;  // 4 MB chunks + framing
  opts.shard_template.max_connections = 16;
  opts.client_template.resp_slot_bytes = 5 << 20;
  opts.client_template.max_shard_connections = 8;
  db::HydraCluster cluster(opts);
  apps::load_blocks_into_hydradb(cluster, job);
  const Duration hydra_time = apps::run_job_on_hydradb(cluster, job);
  std::printf("%-18s on HydraDB cache  : %8.2f ms\n", job.name.c_str(),
              static_cast<double>(hydra_time) / 1e6);

  std::printf("speedup: %.2fx (RDMA + chunked cache layer vs kernel TCP)\n",
              static_cast<double>(hdfs_time) / static_cast<double>(hydra_time));

  // Second pass over hot input: remote pointers are warm now, so the gap
  // widens -- the iterative-workload effect that motivated the cache.
  const Duration second_pass = apps::run_job_on_hydradb(cluster, job);
  std::printf("second pass on warm cache: %8.2f ms (pointer-cache effect)\n",
              static_cast<double>(second_pass) / 1e6);
  return 0;
}
