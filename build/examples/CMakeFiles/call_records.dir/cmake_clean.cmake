file(REMOVE_RECURSE
  "CMakeFiles/call_records.dir/call_records.cpp.o"
  "CMakeFiles/call_records.dir/call_records.cpp.o.d"
  "call_records"
  "call_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
