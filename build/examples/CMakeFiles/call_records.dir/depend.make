# Empty dependencies file for call_records.
# This may be replaced when dependencies are built.
