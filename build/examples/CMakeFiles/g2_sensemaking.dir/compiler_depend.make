# Empty compiler generated dependencies file for g2_sensemaking.
# This may be replaced when dependencies are built.
