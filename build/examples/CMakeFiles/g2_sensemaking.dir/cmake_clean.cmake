file(REMOVE_RECURSE
  "CMakeFiles/g2_sensemaking.dir/g2_sensemaking.cpp.o"
  "CMakeFiles/g2_sensemaking.dir/g2_sensemaking.cpp.o.d"
  "g2_sensemaking"
  "g2_sensemaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2_sensemaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
