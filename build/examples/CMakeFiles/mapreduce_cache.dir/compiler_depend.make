# Empty compiler generated dependencies file for mapreduce_cache.
# This may be replaced when dependencies are built.
