file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_cache.dir/mapreduce_cache.cpp.o"
  "CMakeFiles/mapreduce_cache.dir/mapreduce_cache.cpp.o.d"
  "mapreduce_cache"
  "mapreduce_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
