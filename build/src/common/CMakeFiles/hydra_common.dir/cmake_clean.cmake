file(REMOVE_RECURSE
  "CMakeFiles/hydra_common.dir/hash.cpp.o"
  "CMakeFiles/hydra_common.dir/hash.cpp.o.d"
  "CMakeFiles/hydra_common.dir/histogram.cpp.o"
  "CMakeFiles/hydra_common.dir/histogram.cpp.o.d"
  "CMakeFiles/hydra_common.dir/keygen.cpp.o"
  "CMakeFiles/hydra_common.dir/keygen.cpp.o.d"
  "CMakeFiles/hydra_common.dir/logging.cpp.o"
  "CMakeFiles/hydra_common.dir/logging.cpp.o.d"
  "libhydra_common.a"
  "libhydra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
