file(REMOVE_RECURSE
  "CMakeFiles/hydra_replication.dir/primary.cpp.o"
  "CMakeFiles/hydra_replication.dir/primary.cpp.o.d"
  "CMakeFiles/hydra_replication.dir/secondary.cpp.o"
  "CMakeFiles/hydra_replication.dir/secondary.cpp.o.d"
  "libhydra_replication.a"
  "libhydra_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
