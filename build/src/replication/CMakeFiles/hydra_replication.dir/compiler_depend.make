# Empty compiler generated dependencies file for hydra_replication.
# This may be replaced when dependencies are built.
