file(REMOVE_RECURSE
  "libhydra_replication.a"
)
