file(REMOVE_RECURSE
  "CMakeFiles/hydra_apps.dir/cdr.cpp.o"
  "CMakeFiles/hydra_apps.dir/cdr.cpp.o.d"
  "CMakeFiles/hydra_apps.dir/g2.cpp.o"
  "CMakeFiles/hydra_apps.dir/g2.cpp.o.d"
  "CMakeFiles/hydra_apps.dir/hdfs_lite.cpp.o"
  "CMakeFiles/hydra_apps.dir/hdfs_lite.cpp.o.d"
  "CMakeFiles/hydra_apps.dir/mapreduce.cpp.o"
  "CMakeFiles/hydra_apps.dir/mapreduce.cpp.o.d"
  "libhydra_apps.a"
  "libhydra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
