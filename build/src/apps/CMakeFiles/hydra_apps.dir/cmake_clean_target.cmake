file(REMOVE_RECURSE
  "libhydra_apps.a"
)
