# Empty compiler generated dependencies file for hydra_apps.
# This may be replaced when dependencies are built.
