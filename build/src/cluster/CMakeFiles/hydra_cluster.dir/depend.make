# Empty dependencies file for hydra_cluster.
# This may be replaced when dependencies are built.
