file(REMOVE_RECURSE
  "libhydra_cluster.a"
)
