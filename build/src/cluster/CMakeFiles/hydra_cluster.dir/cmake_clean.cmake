file(REMOVE_RECURSE
  "CMakeFiles/hydra_cluster.dir/coordinator.cpp.o"
  "CMakeFiles/hydra_cluster.dir/coordinator.cpp.o.d"
  "CMakeFiles/hydra_cluster.dir/ring.cpp.o"
  "CMakeFiles/hydra_cluster.dir/ring.cpp.o.d"
  "libhydra_cluster.a"
  "libhydra_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
