file(REMOVE_RECURSE
  "CMakeFiles/hydra_db.dir/hydra_cluster.cpp.o"
  "CMakeFiles/hydra_db.dir/hydra_cluster.cpp.o.d"
  "CMakeFiles/hydra_db.dir/swat.cpp.o"
  "CMakeFiles/hydra_db.dir/swat.cpp.o.d"
  "libhydra_db.a"
  "libhydra_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
