file(REMOVE_RECURSE
  "libhydra_db.a"
)
