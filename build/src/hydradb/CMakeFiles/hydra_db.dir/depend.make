# Empty dependencies file for hydra_db.
# This may be replaced when dependencies are built.
