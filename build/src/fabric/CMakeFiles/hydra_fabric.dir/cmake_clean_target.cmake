file(REMOVE_RECURSE
  "libhydra_fabric.a"
)
