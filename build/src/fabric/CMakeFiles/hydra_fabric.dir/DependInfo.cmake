
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/hydra_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/hydra_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/queue_pair.cpp" "src/fabric/CMakeFiles/hydra_fabric.dir/queue_pair.cpp.o" "gcc" "src/fabric/CMakeFiles/hydra_fabric.dir/queue_pair.cpp.o.d"
  "/root/repo/src/fabric/tcp.cpp" "src/fabric/CMakeFiles/hydra_fabric.dir/tcp.cpp.o" "gcc" "src/fabric/CMakeFiles/hydra_fabric.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
