file(REMOVE_RECURSE
  "CMakeFiles/hydra_fabric.dir/fabric.cpp.o"
  "CMakeFiles/hydra_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/hydra_fabric.dir/queue_pair.cpp.o"
  "CMakeFiles/hydra_fabric.dir/queue_pair.cpp.o.d"
  "CMakeFiles/hydra_fabric.dir/tcp.cpp.o"
  "CMakeFiles/hydra_fabric.dir/tcp.cpp.o.d"
  "libhydra_fabric.a"
  "libhydra_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
