# Empty dependencies file for hydra_fabric.
# This may be replaced when dependencies are built.
