file(REMOVE_RECURSE
  "CMakeFiles/hydra_server.dir/pipelined_shard.cpp.o"
  "CMakeFiles/hydra_server.dir/pipelined_shard.cpp.o.d"
  "CMakeFiles/hydra_server.dir/shard.cpp.o"
  "CMakeFiles/hydra_server.dir/shard.cpp.o.d"
  "libhydra_server.a"
  "libhydra_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
