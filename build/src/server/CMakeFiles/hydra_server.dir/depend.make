# Empty dependencies file for hydra_server.
# This may be replaced when dependencies are built.
