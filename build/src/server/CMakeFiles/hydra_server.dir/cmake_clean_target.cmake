file(REMOVE_RECURSE
  "libhydra_server.a"
)
