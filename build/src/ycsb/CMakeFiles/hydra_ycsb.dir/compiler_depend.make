# Empty compiler generated dependencies file for hydra_ycsb.
# This may be replaced when dependencies are built.
