file(REMOVE_RECURSE
  "CMakeFiles/hydra_ycsb.dir/baseline_runner.cpp.o"
  "CMakeFiles/hydra_ycsb.dir/baseline_runner.cpp.o.d"
  "CMakeFiles/hydra_ycsb.dir/runner.cpp.o"
  "CMakeFiles/hydra_ycsb.dir/runner.cpp.o.d"
  "CMakeFiles/hydra_ycsb.dir/workload.cpp.o"
  "CMakeFiles/hydra_ycsb.dir/workload.cpp.o.d"
  "libhydra_ycsb.a"
  "libhydra_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
