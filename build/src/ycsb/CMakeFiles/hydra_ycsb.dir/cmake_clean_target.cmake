file(REMOVE_RECURSE
  "libhydra_ycsb.a"
)
