
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/memcached_like.cpp" "src/baselines/CMakeFiles/hydra_baselines.dir/memcached_like.cpp.o" "gcc" "src/baselines/CMakeFiles/hydra_baselines.dir/memcached_like.cpp.o.d"
  "/root/repo/src/baselines/ramcloud_like.cpp" "src/baselines/CMakeFiles/hydra_baselines.dir/ramcloud_like.cpp.o" "gcc" "src/baselines/CMakeFiles/hydra_baselines.dir/ramcloud_like.cpp.o.d"
  "/root/repo/src/baselines/redis_like.cpp" "src/baselines/CMakeFiles/hydra_baselines.dir/redis_like.cpp.o" "gcc" "src/baselines/CMakeFiles/hydra_baselines.dir/redis_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/hydra_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/hydra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
