# Empty dependencies file for hydra_proto.
# This may be replaced when dependencies are built.
