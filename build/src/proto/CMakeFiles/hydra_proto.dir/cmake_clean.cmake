file(REMOVE_RECURSE
  "CMakeFiles/hydra_proto.dir/frame.cpp.o"
  "CMakeFiles/hydra_proto.dir/frame.cpp.o.d"
  "CMakeFiles/hydra_proto.dir/messages.cpp.o"
  "CMakeFiles/hydra_proto.dir/messages.cpp.o.d"
  "libhydra_proto.a"
  "libhydra_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
