file(REMOVE_RECURSE
  "libhydra_proto.a"
)
