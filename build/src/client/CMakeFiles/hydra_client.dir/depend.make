# Empty dependencies file for hydra_client.
# This may be replaced when dependencies are built.
