file(REMOVE_RECURSE
  "CMakeFiles/hydra_client.dir/client.cpp.o"
  "CMakeFiles/hydra_client.dir/client.cpp.o.d"
  "libhydra_client.a"
  "libhydra_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
