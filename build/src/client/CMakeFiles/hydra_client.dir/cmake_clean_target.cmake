file(REMOVE_RECURSE
  "libhydra_client.a"
)
