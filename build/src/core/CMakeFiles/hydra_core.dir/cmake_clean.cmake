file(REMOVE_RECURSE
  "CMakeFiles/hydra_core.dir/arena.cpp.o"
  "CMakeFiles/hydra_core.dir/arena.cpp.o.d"
  "CMakeFiles/hydra_core.dir/hash_table.cpp.o"
  "CMakeFiles/hydra_core.dir/hash_table.cpp.o.d"
  "CMakeFiles/hydra_core.dir/store.cpp.o"
  "CMakeFiles/hydra_core.dir/store.cpp.o.d"
  "libhydra_core.a"
  "libhydra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
