
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arena.cpp" "src/core/CMakeFiles/hydra_core.dir/arena.cpp.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/arena.cpp.o.d"
  "/root/repo/src/core/hash_table.cpp" "src/core/CMakeFiles/hydra_core.dir/hash_table.cpp.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/hash_table.cpp.o.d"
  "/root/repo/src/core/store.cpp" "src/core/CMakeFiles/hydra_core.dir/store.cpp.o" "gcc" "src/core/CMakeFiles/hydra_core.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
