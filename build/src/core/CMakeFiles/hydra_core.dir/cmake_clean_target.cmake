file(REMOVE_RECURSE
  "libhydra_core.a"
)
