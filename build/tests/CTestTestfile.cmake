# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/server_client_test[1]_include.cmake")
