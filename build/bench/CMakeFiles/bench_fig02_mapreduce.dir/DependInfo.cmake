
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02_mapreduce.cpp" "bench/CMakeFiles/bench_fig02_mapreduce.dir/bench_fig02_mapreduce.cpp.o" "gcc" "bench/CMakeFiles/bench_fig02_mapreduce.dir/bench_fig02_mapreduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/hydra_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/hydra_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/hydradb/CMakeFiles/hydra_db.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/hydra_server.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/hydra_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hydra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/hydra_client.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hydra_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/hydra_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/hydra_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hydra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hydra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
