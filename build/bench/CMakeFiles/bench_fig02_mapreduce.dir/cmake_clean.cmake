file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_mapreduce.dir/bench_fig02_mapreduce.cpp.o"
  "CMakeFiles/bench_fig02_mapreduce.dir/bench_fig02_mapreduce.cpp.o.d"
  "bench_fig02_mapreduce"
  "bench_fig02_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
