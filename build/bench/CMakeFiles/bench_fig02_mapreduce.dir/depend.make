# Empty dependencies file for bench_fig02_mapreduce.
# This may be replaced when dependencies are built.
