# Empty dependencies file for bench_fig03_g2.
# This may be replaced when dependencies are built.
