file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_hits.dir/bench_fig11_hits.cpp.o"
  "CMakeFiles/bench_fig11_hits.dir/bench_fig11_hits.cpp.o.d"
  "bench_fig11_hits"
  "bench_fig11_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
