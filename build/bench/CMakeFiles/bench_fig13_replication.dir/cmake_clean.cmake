file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_replication.dir/bench_fig13_replication.cpp.o"
  "CMakeFiles/bench_fig13_replication.dir/bench_fig13_replication.cpp.o.d"
  "bench_fig13_replication"
  "bench_fig13_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
