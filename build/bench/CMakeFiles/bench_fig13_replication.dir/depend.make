# Empty dependencies file for bench_fig13_replication.
# This may be replaced when dependencies are built.
