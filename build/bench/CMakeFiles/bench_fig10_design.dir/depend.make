# Empty dependencies file for bench_fig10_design.
# This may be replaced when dependencies are built.
