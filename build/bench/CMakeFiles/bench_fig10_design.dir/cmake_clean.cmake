file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_design.dir/bench_fig10_design.cpp.o"
  "CMakeFiles/bench_fig10_design.dir/bench_fig10_design.cpp.o.d"
  "bench_fig10_design"
  "bench_fig10_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
